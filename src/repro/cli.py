"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro run [--nodes N] [--rounds R] [--rate KBPS]
    python -m repro run --scenario fig9 [--nodes 240] [--policy sharded]
    python -m repro run --scenario detect --strategy silent-receiver
    python -m repro scenarios
    python -m repro serve --scenario fig7 --listen tcp://127.0.0.1:0
    python -m repro watch tcp://127.0.0.1:PORT [--raw]
    python -m repro ctl tcp://127.0.0.1:PORT churn --node 5
    python -m repro verify [--fanout F]
    python -m repro bench [--out BENCH_hotpath.json] [--quick]
    python -m repro lint [PATHS ...] [--rules] [--no-wire-check]

``run --scenario NAME`` dispatches through the scenario registry; when
the name has a registered paper renderer (``fig7``..``table2``,
``detect``) the figure/table is printed next to the paper's reference
values.  The legacy verbs (``repro fig7`` etc.) remain as thin
deprecated aliases: identical stdout, plus a pointer on stderr.
``serve``/``watch``/``ctl`` expose the supervised service mode — a
live session with health, an NDJSON event stream, and operator control
applied at round boundaries (see repro.service).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]

_STRATEGIES = {
    "free-rider": "FreeRider",
    "partial-forwarder": "PartialForwarder",
    "silent-receiver": "SilentReceiver",
    "declaration-skipper": "DeclarationSkipper",
    "contact-avoider": "ContactAvoider",
}


def _positive_int(value: str) -> int:
    """Argparse type for counts that must be at least 1."""
    try:
        number = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {value!r}"
        ) from None
    if number < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (got {number})"
        )
    return number


def _add_policy_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--policy",
        choices=("serial", "sharded", "parallel", "daemon"),
        default=None,
        help=(
            "execution policy (see repro.sim.execution); all are "
            "bit-identical, 'parallel' runs shards on a worker pool, "
            "'daemon' round-trips every message through the v1 wire "
            "codec. Default: the scenario's own policy knob, else "
            "serial."
        ),
    )
    parser.add_argument(
        "--shards",
        type=_positive_int,
        default=4,
        help="shard count for --policy sharded",
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="worker count for --policy parallel (default: --shards)",
    )


def _policy_from(args):
    """Build the execution policy the parsed flags describe.

    ``args`` always comes from a subcommand that went through
    :func:`_add_policy_flags`, so ``policy``/``shards``/``workers`` are
    read directly — a subcommand without the flags is a programming
    error, not a silently ignored option.
    """
    from repro.sim.execution import make_policy

    if args.policy is None:
        if args.workers is not None:
            raise SystemExit(
                "error: --workers only applies to --policy parallel"
            )
        return None
    if args.workers is not None and args.policy != "parallel":
        raise SystemExit(
            f"error: --workers only applies to --policy parallel "
            f"(got --policy {args.policy})"
        )
    return make_policy(
        args.policy,
        shards=args.shards,
        workers=args.workers,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'PAG: Private and Accountable Gossip' "
            "(ICDCS 2016)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run an honest PAG session or a named scenario"
    )
    run.add_argument(
        "--scenario",
        default=None,
        help="named scenario from the registry (see 'repro scenarios')",
    )
    run.add_argument("--nodes", type=int, default=None)
    run.add_argument("--rounds", type=int, default=None)
    run.add_argument("--rate", type=float, default=None)
    run.add_argument(
        "--population",
        type=_positive_int,
        default=None,
        help=(
            "with --scenario: population-tier size override (caps a "
            "million-node scenario to smoke scale, or scales one up)"
        ),
    )
    run.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help=(
            "with --scenario: also write the run summary (wall clock, "
            "bytes, CDF) as JSON to PATH"
        ),
    )
    run.add_argument(
        "--strategy",
        choices=sorted(_STRATEGIES),
        default=None,
        help=(
            "deviant strategy override for renderer scenarios that "
            "take one (--scenario detect)"
        ),
    )
    _add_policy_flags(run)

    scenarios = sub.add_parser(
        "scenarios", help="list the registered scenarios"
    )
    scenarios.add_argument(
        "--verbose", action="store_true", help="include paper references"
    )

    detect = sub.add_parser(
        "detect",
        help="deprecated alias for 'run --scenario detect'",
    )
    detect.add_argument(
        "--strategy",
        choices=sorted(_STRATEGIES),
        default=None,
    )
    detect.add_argument("--nodes", type=int, default=None)
    detect.add_argument("--rounds", type=int, default=None)

    for name, help_text in [
        ("fig7", "bandwidth CDF, PAG vs AcTinG"),
        ("fig8", "bandwidth vs update size"),
        ("fig9", "scalability 10^3..10^6 nodes"),
        ("fig10", "privacy under coalitions"),
        ("table1", "crypto operations per second"),
        ("table2", "sustainable video quality per link"),
    ]:
        p = sub.add_parser(
            name,
            help=f"deprecated alias for 'run --scenario {name}': "
            f"{help_text}",
        )
        if name == "fig7":
            p.add_argument("--nodes", type=int, default=None)
            p.add_argument("--rounds", type=int, default=None)
            _add_policy_flags(p)

    verify = sub.add_parser(
        "verify", help="symbolic verification of privacy property P1"
    )
    verify.add_argument("--fanout", type=int, default=3)

    export = sub.add_parser(
        "export", help="write every figure/table series as CSV/JSON"
    )
    export.add_argument("--out", default="results")

    bench = sub.add_parser(
        "bench", help="hot-path throughput benchmark (BENCH_hotpath.json)"
    )
    bench.add_argument("--out", default="BENCH_hotpath.json")
    bench.add_argument(
        "--quick", action="store_true",
        help="short time boxes (smoke-test scale)",
    )
    bench.add_argument("--nodes", type=int, default=40)
    bench.add_argument("--rounds", type=int, default=8)
    bench.add_argument(
        "--section",
        action="append",
        default=None,
        metavar="NAME",
        help=(
            "re-time only this report section (repeatable; e.g. "
            "--section population); other sections are kept from the "
            "existing --out file instead of being re-measured"
        ),
    )

    lint = sub.add_parser(
        "lint",
        help=(
            "static project-invariant analysis: determinism (DET1xx), "
            "wire-schema coverage (WIRE2xx), policy parity (PAR3xx)"
        ),
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed "
        "repro package sources)",
    )
    lint.add_argument(
        "--rules", action="store_true",
        help="list every rule code and exit",
    )
    lint.add_argument(
        "--no-wire-check", action="store_true",
        help="skip the wire-schema cross-check",
    )
    lint.add_argument(
        "--root", default=None, metavar="DIR",
        help="repository root for locating tests/net assets",
    )

    daemon = sub.add_parser(
        "daemon",
        help=(
            "host one shard of a session behind a transport endpoint "
            "(tcp://host:port, unix:///path, mem://name)"
        ),
    )
    daemon.add_argument(
        "--listen",
        required=True,
        metavar="ENDPOINT",
        help="endpoint to accept the coordinator and peer daemons on",
    )

    session = sub.add_parser(
        "session",
        help=(
            "coordinate a scenario across node daemons (join handshake, "
            "round barriers, merged verdict report)"
        ),
    )
    session.add_argument(
        "--scenario",
        required=True,
        help="named scenario from the registry (see 'repro scenarios')",
    )
    session.add_argument("--nodes", type=int, default=None)
    session.add_argument("--rounds", type=int, default=None)
    session.add_argument(
        "--daemons",
        default=None,
        metavar="EP1,EP2,...",
        help=(
            "comma-separated endpoints of already-running daemons "
            "(one shard each); omit to spawn --local-daemons in-process"
        ),
    )
    session.add_argument(
        "--local-daemons",
        type=_positive_int,
        default=2,
        metavar="N",
        help=(
            "without --daemons: number of in-process daemons to spawn "
            "(default 2)"
        ),
    )
    session.add_argument(
        "--transport",
        choices=("mem", "tcp", "unix"),
        default="mem",
        help="transport scheme for --local-daemons (default mem)",
    )
    session.add_argument(
        "--no-batch-relays",
        action="store_true",
        help=(
            "send attestation relays one per frame instead of "
            "coalescing same-monitor relays into one signed batch"
        ),
    )
    session.add_argument(
        "--verify-serial",
        action="store_true",
        help=(
            "also run the scenario on the in-process serial engine and "
            "compare the verdict sets"
        ),
    )
    session.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the merged session report as JSON to PATH",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help=(
            "fault/adversary fuzzing: random fault schedules x deviant "
            "mixes x churn, checked for false convictions, missed "
            "deviants and cross-policy divergence"
        ),
    )
    fuzz.add_argument(
        "--iterations", type=_positive_int, default=50,
        help="random scenarios to draw (default 50)",
    )
    fuzz.add_argument(
        "--seed", type=int, default=20160627,
        help="campaign seed; same seed, same draws",
    )
    fuzz.add_argument(
        "--policies",
        default="serial,sharded,parallel",
        help=(
            "comma-separated execution policies to cross-check "
            "(default: all three)"
        ),
    )
    fuzz.add_argument(
        "--workers", type=_positive_int, default=2,
        help="shard/worker count for the sharded and parallel policies",
    )
    fuzz.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the full campaign report (violations, shrunken "
        "repro specs) as JSON to PATH",
    )
    fuzz.add_argument(
        "--replay", default=None, metavar="PATH",
        help="re-check the shrunken spec of the first violation in a "
        "previous report (or a bare spec JSON) instead of fuzzing",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="report violating specs as drawn, without shrinking",
    )

    serve = sub.add_parser(
        "serve",
        help=(
            "run a scenario under the service supervisor: health "
            "endpoint, live event stream, operator control "
            "(tcp://host:port, unix:///path, mem://name)"
        ),
    )
    serve.add_argument(
        "--scenario",
        required=True,
        help="named scenario from the registry (see 'repro scenarios')",
    )
    serve.add_argument(
        "--listen",
        required=True,
        metavar="ENDPOINT",
        help="endpoint to serve health/events/control on",
    )
    serve.add_argument("--nodes", type=int, default=None)
    serve.add_argument("--rounds", type=int, default=None)
    serve.add_argument(
        "--policy",
        choices=("serial", "daemon"),
        default=None,
        help=(
            "serial-schedule execution policy for the supervised run "
            "(default serial; worker-replica policies are rejected)"
        ),
    )
    serve.add_argument(
        "--round-delay",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="sleep between rounds so observers can watch live",
    )
    serve.add_argument(
        "--max-restarts",
        type=int,
        default=0,
        metavar="N",
        help=(
            "crash-containment budget: rebuild the session and replay "
            "the operator journal up to N times (default 0: fail fast)"
        ),
    )

    watch = sub.add_parser(
        "watch",
        help="terminal dashboard: stream events from a 'repro serve'",
    )
    watch.add_argument(
        "endpoint", help="the serve endpoint (printed by 'repro serve')"
    )
    watch.add_argument(
        "--kinds",
        default=None,
        metavar="K1,K2,...",
        help=(
            "comma-separated event kinds to stream (state, round, "
            "meter, counters, verdict); default all"
        ),
    )
    watch.add_argument(
        "--raw", action="store_true",
        help="print NDJSON events instead of the human layout",
    )
    watch.add_argument(
        "--max-events",
        type=_positive_int,
        default=None,
        metavar="N",
        help="detach after N events (CI smoke hook)",
    )

    ctl = sub.add_parser(
        "ctl",
        help="operator control against a 'repro serve' endpoint",
    )
    ctl.add_argument(
        "endpoint", help="the serve endpoint (printed by 'repro serve')"
    )
    ctl.add_argument(
        "op",
        choices=(
            "health", "pause", "resume", "churn", "admit", "strategy",
            "snapshot", "drain",
        ),
        help=(
            "health: liveness poll; pause/resume/drain: lifecycle; "
            "churn/admit: remove or admit --node at the next boundary; "
            "strategy: flip --node to --arg; snapshot: state dump"
        ),
    )
    ctl.add_argument(
        "--node", type=int, default=None, metavar="ID",
        help="target node id (churn, admit, strategy)",
    )
    ctl.add_argument(
        "--arg", default="", metavar="VALUE",
        help="op argument (strategy name for 'strategy')",
    )
    return parser


def _cmd_run(args) -> int:
    if args.scenario is not None:
        from repro.scenarios.figures import render_scenario_run

        return render_scenario_run(
            args.scenario,
            nodes=args.nodes,
            rounds=args.rounds,
            rate=args.rate,
            execution_policy=_policy_from(args),
            json_out=args.json,
            population=args.population,
            strategy=args.strategy,
        )
    if args.json is not None:
        raise SystemExit("error: --json requires --scenario")
    if args.population is not None:
        raise SystemExit("error: --population requires --scenario")
    if args.strategy is not None:
        raise SystemExit("error: --strategy requires --scenario")

    from repro.core import PagConfig, PagSession

    nodes = args.nodes if args.nodes is not None else 30
    rounds = args.rounds if args.rounds is not None else 15
    rate = args.rate if args.rate is not None else 300.0
    config = PagConfig.for_system_size(nodes, stream_rate_kbps=rate)
    session = PagSession.create(
        nodes, config=config, execution_policy=_policy_from(args)
    )
    session.run(rounds)
    mean = session.mean_bandwidth_kbps(
        warmup_rounds=min(4, rounds - 1), direction="down"
    )
    print(f"{nodes} nodes, {rounds} rounds, {rate:.0f} Kbps stream")
    print(f"mean download      : {mean:.0f} Kbps per node")
    print(f"mean continuity    : {session.mean_continuity():.1%}")
    print(f"verdicts           : {len(session.all_verdicts())}")
    ops = session.crypto_report()
    node_rounds = len(session.nodes) * session.current_round
    print(
        f"crypto per node-sec: {ops['signatures'] / node_rounds:.1f} "
        f"signatures, {ops['homomorphic_hashes'] / node_rounds:.0f} "
        "homomorphic hashes"
    )
    return 0


def _cmd_scenarios(args) -> int:
    from repro.scenarios import all_scenarios

    print(f"{'name':<16} {'proto':<7} {'nodes':>5} {'rounds':>6}  description")
    for spec in all_scenarios():
        print(
            f"{spec.name:<16} {spec.protocol:<7} {spec.nodes:>5} "
            f"{spec.rounds:>6}  {spec.description}"
        )
        if args.verbose and spec.paper_reference:
            print(f"{'':<16} paper: {spec.paper_reference}")
    return 0


def _deprecated_alias(alias: str, scenario: str) -> None:
    """Point the operator at the registry verb (on stderr, so alias
    stdout stays byte-identical to ``run --scenario``)."""
    print(
        f"note: 'repro {alias}' is a deprecated alias; use "
        f"'repro run --scenario {scenario}'",
        file=sys.stderr,
    )


def _cmd_detect(args) -> int:
    _deprecated_alias("detect", "detect")
    from repro.scenarios.figures import render_scenario_run

    return render_scenario_run(
        "detect",
        nodes=args.nodes,
        rounds=args.rounds,
        strategy=args.strategy,
    )


def _cmd_fig7(args) -> int:
    _deprecated_alias("fig7", "fig7")
    from repro.scenarios.figures import render_scenario_run

    return render_scenario_run(
        "fig7",
        nodes=args.nodes,
        rounds=args.rounds,
        execution_policy=_policy_from(args),
    )


def _make_alias_cmd(name: str):
    def handler(args) -> int:
        _deprecated_alias(name, name)
        from repro.scenarios.figures import render_scenario_run

        return render_scenario_run(name)

    return handler


_cmd_fig8 = _make_alias_cmd("fig8")
_cmd_fig9 = _make_alias_cmd("fig9")
_cmd_fig10 = _make_alias_cmd("fig10")
_cmd_table1 = _make_alias_cmd("table1")
_cmd_table2 = _make_alias_cmd("table2")


def _cmd_verify(args) -> int:
    from repro.verifier import case1_network_attacker, f_coalition_attack

    print(f"Symbolic verification of P1 (fanout {args.fanout})")
    case1 = case1_network_attacker(fanout=args.fanout)
    ok = all(v.private for v in case1.values())
    print(f"  case (1) network attacker: {'SAFE' if ok else 'BROKEN'}")
    coalition, victim = f_coalition_attack(fanout=args.fanout)
    print(
        f"  threshold coalition {coalition}: victim prime recovered = "
        f"{victim.prime_derivable}"
    )
    return 0 if ok and victim.prime_derivable else 1


def _cmd_bench(args) -> int:
    from repro.analysis.hotpath import run_hotpath_bench

    report = run_hotpath_bench(
        out_path=args.out,
        quick=args.quick,
        engine_nodes=args.nodes,
        engine_rounds=args.rounds,
        sections=args.section,
    )
    # With --section only the selected sections are re-measured; keys
    # absent from the merged report are simply not printed.
    print(f"Hot-path throughput [{report['backend']} backend]")
    if "hashes_per_s" in report:
        hashes = report["hashes_per_s"]
        print(f"  hashes/s 256-bit : {hashes['256']:>12,.0f}")
        print(f"  hashes/s 512-bit : {hashes['512']:>12,.0f}")
    if "rekey_fixed_base_per_s" in report:
        print(
            "  rekeys/s 512-bit : "
            f"{report['rekey_fixed_base_per_s']['512']:>12,.0f}"
        )
    if "primes_per_s" in report:
        print(
            f"  primes/s 512-bit : {report['primes_per_s']['512']:>12,.1f}"
        )
    if "engine" in report:
        engine = report["engine"]
        print(
            f"  engine rounds/s  : {engine['rounds_per_s']:>12,.2f} "
            f"({engine['nodes']} nodes)"
        )
        cache = engine["cache"]
        print(
            f"  hash cache hits  : {cache['memo_hit_rate']:>12.1%} memo, "
            f"{cache['fixed_base_hit_rate']:.1%} fixed-base"
        )
    if "meter_cdf" in report:
        meter = report["meter_cdf"]
        print(
            f"  meter CDF aggs/s : {meter['columnar_per_s']:>12,.0f} "
            f"({meter['speedup']:.1f}x over dict probes)"
        )
    if "meter_matrix" in report:
        matrix = report["meter_matrix"]
        print(
            f"  meter matrix     : {matrix['vectorized_per_s']:>12,.0f} "
            f"aggs/s ({matrix['speedup']:.1f}x over columnar at "
            f"{matrix['nodes']}x{matrix['rounds']})"
        )
    if "parallel" in report:
        parallel = report["parallel"]
        print(
            f"  parallel scaling : {parallel['scenario']} "
            f"({parallel['nodes']} nodes, {parallel['cpu_count']} cpu) — "
            f"serial {parallel['serial_rounds_per_s']:.2f} rounds/s"
        )
        for row in parallel["rows"]:
            print(
                f"    {row['workers']} workers       : "
                f"{row['wall_rounds_per_s']:>8.2f} rounds/s wall "
                f"({row['speedup_wall']:.2f}x), "
                f"{row['projected_multicore_rounds_per_s']:.2f} projected "
                f"multicore ({row['speedup_projected_multicore']:.2f}x)"
            )
    if "batch_verify" in report:
        for row in report["batch_verify"]["primitive"]:
            print(
                f"  batched fold k={row['pairs']:<2} : "
                f"{row['speedup']:.2f}x over per-pair pow "
                f"({row['batched_folds_per_s']:,.1f} folds/s)"
            )
    if "shared_ladder" in report:
        ladder = report["shared_ladder"]
        print(
            "  shared ladder    : "
            f"{ladder['worker_cpu_saved_fraction']:.1%} "
            f"worker CPU saved on {ladder['scenario']} "
            f"({ladder['workers']} workers)"
        )
    if "population" in report:
        population = report["population"]
        print(
            f"  population tier  : {population['nodes_per_sec']:>12,.0f} "
            f"nodes/s ({population['population']:,} nodes, "
            f"{population['rounds']} rounds, "
            f"{population['peak_rss_mb']:.0f} MiB peak RSS)"
        )
    if "service_hooks" in report:
        hooks = report["service_hooks"]
        print(
            "  service hooks    : "
            f"{hooks['idle_tick_ns']:,.0f} ns idle tick "
            f"({hooks['idle_overhead_fraction']:.4%} of a round; "
            f"{hooks['subscribed_overhead_fraction']:.4%} with a "
            "subscriber)"
        )
    print(f"  written          : {args.out}")
    return 0


def _cmd_lint(args) -> int:
    from repro.lint.runner import main as lint_main

    argv = list(args.paths)
    if args.rules:
        argv.append("--rules")
    if args.no_wire_check:
        argv.append("--no-wire-check")
    if args.root is not None:
        argv.extend(["--root", args.root])
    return lint_main(argv)


def _cmd_daemon(args) -> int:
    import asyncio

    from repro.net.daemon import NodeDaemon

    async def serve() -> None:
        daemon = NodeDaemon(args.listen)
        endpoint = await daemon.start()
        print(f"daemon listening on {endpoint}", flush=True)
        await daemon.serve_forever()
        print("daemon shut down cleanly")

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("interrupted")
        return 130
    return 0


def _cmd_session(args) -> int:
    import asyncio
    import json

    from repro.net.daemon import (
        SessionCoordinator,
        run_coordinated_session,
        validate_daemon_spec,
    )
    from repro.scenarios import get_scenario

    import dataclasses

    spec = get_scenario(args.scenario).with_overrides(
        nodes=args.nodes, rounds=args.rounds
    )
    # The daemon runtime *is* the execution policy; strip the spec's
    # own knob so --verify-serial compares against the serial baseline.
    spec = dataclasses.replace(spec, policy=None)
    validate_daemon_spec(spec)
    batch_relays = not args.no_batch_relays
    if args.daemons is not None:
        endpoints = [
            item.strip() for item in args.daemons.split(",") if item.strip()
        ]
        coordinator = SessionCoordinator(
            spec, endpoints, batch_relays=batch_relays
        )
        result = asyncio.run(coordinator.run())
    else:
        result = asyncio.run(
            run_coordinated_session(
                spec,
                shards=args.local_daemons,
                scheme=args.transport,
                batch_relays=batch_relays,
            )
        )
    print(
        f"{result['scenario']}: {result['shards']} shards, "
        f"{result['rounds']} rounds"
    )
    print(
        f"  wire traffic : {result['frames_sent']} frames, "
        f"{result['bytes_on_wire']} bytes "
        f"({result['relay_batches']} relay batches covering "
        f"{result['relays_batched']} relays)"
    )
    if result["mean_continuity"] is not None:
        print(f"  continuity   : {result['mean_continuity']:.1%}")
    print(
        f"  verdicts     : {len(result['verdicts'])} "
        f"(convicted: {result['convicted']})"
    )
    status = 0
    if args.verify_serial:
        serial = spec.run()
        serial_verdicts = sorted(
            (v.node, v.reason.value, v.exchange_round)
            for v in serial.session.all_verdicts()
        )
        daemon_verdicts = sorted(
            (node, reason, exchange_round)
            for node, reason, exchange_round, _ in result["verdicts"]
        )
        if serial_verdicts == daemon_verdicts:
            print(
                f"  serial parity: OK ({len(serial_verdicts)} verdicts "
                "match)"
            )
        else:
            print("  serial parity: MISMATCH")
            print(f"    serial: {serial_verdicts}")
            print(f"    daemon: {daemon_verdicts}")
            status = 1
        result["serial_verdicts"] = serial_verdicts
        result["serial_parity"] = serial_verdicts == daemon_verdicts
    if args.json is not None:
        with open(args.json, "w") as handle:
            json.dump(result, handle, indent=2)
        print(f"  report       : {args.json}")
    return status


def _cmd_fuzz(args) -> int:
    import json

    from repro.scenarios.fuzz import (
        FuzzConfig,
        run_fuzz,
        spec_from_json,
    )

    policies = tuple(
        name.strip() for name in args.policies.split(",") if name.strip()
    )
    config = FuzzConfig(
        iterations=args.iterations,
        seed=args.seed,
        policies=policies,
        workers=args.workers,
        shrink=not args.no_shrink,
    )
    replay_spec = None
    if args.replay is not None:
        with open(args.replay) as handle:
            payload = json.load(handle)
        # Accept either a full campaign report or a bare spec dict.
        if "violations" in payload:
            if not payload["violations"]:
                print(f"{args.replay}: no violations to replay")
                return 0
            payload = payload["violations"][0]["spec"]
        replay_spec = spec_from_json(payload)
        print(
            f"replaying {replay_spec.name}: {replay_spec.nodes} nodes, "
            f"{replay_spec.rounds} rounds, "
            f"{len(replay_spec.fault_schedule)} faults, seed "
            f"{replay_spec.seed}"
        )
    report = run_fuzz(config, progress=print, replay_spec=replay_spec)
    if args.json is not None:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.json}")
    totals = report["totals"]
    print(
        f"{report['iterations']} iterations, {totals['faults']} faults, "
        f"{totals['deviants']} deviants, "
        f"{totals['convictions']} convictions, "
        f"{totals['messages_dropped']} drops, "
        f"{totals['messages_delayed']} delays"
    )
    if report["ok"]:
        print("all invariants held")
        return 0
    for entry in report["violations"]:
        for line in entry["violations"]:
            print(f"VIOLATION (iteration {entry['iteration']}): {line}")
    print(
        "shrunken repro spec(s) embedded in the report; replay with "
        "'repro fuzz --replay <report.json>'"
    )
    return 1


def _cmd_export(args) -> int:
    from repro.analysis.export import export_all

    written = export_all(args.out)
    for name, path in sorted(written.items()):
        print(f"  {name:<8} -> {path}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import dataclasses

    from repro.scenarios import get_scenario
    from repro.service import ServiceServer, SessionSupervisor

    spec = get_scenario(
        args.scenario, nodes=args.nodes, rounds=args.rounds
    )
    # The supervisor needs a serial-schedule policy; the spec's own
    # knob (e.g. fig9-parallel) is replaced by the --policy choice.
    policy = args.policy if args.policy == "daemon" else None
    spec = dataclasses.replace(spec, policy=policy)

    async def serve() -> int:
        supervisor = SessionSupervisor(
            spec,
            max_restarts=args.max_restarts,
            round_delay=args.round_delay,
        )
        server = ServiceServer(supervisor, args.listen)
        endpoint = await server.start()
        print(f"service listening on {endpoint}", flush=True)
        code = await server.wait()
        if server.run_error is not None:
            print(f"error: {server.run_error}", file=sys.stderr)
        elif supervisor.error is not None:
            print(f"error: {supervisor.error}", file=sys.stderr)
        else:
            result = supervisor.result
            print(
                f"session complete: {supervisor.rounds_completed} "
                f"rounds, {result.verdicts} verdicts "
                f"(convicted: {list(result.convicted)}), "
                f"{supervisor.bus.published} events published"
            )
        return code

    try:
        return asyncio.run(serve())
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


def _cmd_watch(args) -> int:
    from repro.service import run_watch

    kinds = ()
    if args.kinds:
        kinds = tuple(
            item.strip() for item in args.kinds.split(",") if item.strip()
        )
    try:
        return run_watch(
            args.endpoint,
            kinds=kinds,
            raw=args.raw,
            max_events=args.max_events,
        )
    except KeyboardInterrupt:
        return 130


def _cmd_ctl(args) -> int:
    import json

    from repro.service import request_control, request_health

    if args.op == "health":
        print(
            json.dumps(
                request_health(args.endpoint), indent=2, sort_keys=True
            )
        )
        return 0
    ok, detail, state = request_control(
        args.endpoint, args.op, node_id=args.node, arg=args.arg
    )
    if ok and args.op == "snapshot":
        print(detail)
    else:
        print(f"{'ok' if ok else 'error'}: {detail} (state: {state})")
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "scenarios": _cmd_scenarios,
        "detect": _cmd_detect,
        "fig7": _cmd_fig7,
        "fig8": _cmd_fig8,
        "fig9": _cmd_fig9,
        "fig10": _cmd_fig10,
        "table1": _cmd_table1,
        "table2": _cmd_table2,
        "verify": _cmd_verify,
        "export": _cmd_export,
        "bench": _cmd_bench,
        "fuzz": _cmd_fuzz,
        "lint": _cmd_lint,
        "daemon": _cmd_daemon,
        "session": _cmd_session,
        "serve": _cmd_serve,
        "watch": _cmd_watch,
        "ctl": _cmd_ctl,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
