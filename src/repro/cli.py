"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro run [--nodes N] [--rounds R] [--rate KBPS]
    python -m repro detect [--strategy free-rider] [--nodes N]
    python -m repro fig7 | fig8 | fig9 | fig10 | table1 | table2
    python -m repro verify [--fanout F]
    python -m repro bench [--out BENCH_hotpath.json] [--quick]

Each figure/table subcommand prints the regenerated series next to the
paper's reference values (the same generators the benchmarks assert on).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]

_STRATEGIES = {
    "free-rider": "FreeRider",
    "partial-forwarder": "PartialForwarder",
    "silent-receiver": "SilentReceiver",
    "declaration-skipper": "DeclarationSkipper",
    "contact-avoider": "ContactAvoider",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'PAG: Private and Accountable Gossip' "
            "(ICDCS 2016)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run an honest PAG session")
    run.add_argument("--nodes", type=int, default=30)
    run.add_argument("--rounds", type=int, default=15)
    run.add_argument("--rate", type=float, default=300.0)

    detect = sub.add_parser("detect", help="inject a selfish node")
    detect.add_argument(
        "--strategy",
        choices=sorted(_STRATEGIES),
        default="free-rider",
    )
    detect.add_argument("--nodes", type=int, default=20)
    detect.add_argument("--rounds", type=int, default=12)

    for name, help_text in [
        ("fig7", "bandwidth CDF, PAG vs AcTinG"),
        ("fig8", "bandwidth vs update size"),
        ("fig9", "scalability 10^3..10^6 nodes"),
        ("fig10", "privacy under coalitions"),
        ("table1", "crypto operations per second"),
        ("table2", "sustainable video quality per link"),
    ]:
        p = sub.add_parser(name, help=help_text)
        if name == "fig7":
            p.add_argument("--nodes", type=int, default=60)
            p.add_argument("--rounds", type=int, default=12)

    verify = sub.add_parser(
        "verify", help="symbolic verification of privacy property P1"
    )
    verify.add_argument("--fanout", type=int, default=3)

    export = sub.add_parser(
        "export", help="write every figure/table series as CSV/JSON"
    )
    export.add_argument("--out", default="results")

    bench = sub.add_parser(
        "bench", help="hot-path throughput benchmark (BENCH_hotpath.json)"
    )
    bench.add_argument("--out", default="BENCH_hotpath.json")
    bench.add_argument(
        "--quick", action="store_true",
        help="short time boxes (smoke-test scale)",
    )
    bench.add_argument("--nodes", type=int, default=40)
    bench.add_argument("--rounds", type=int, default=8)
    return parser


def _cmd_run(args) -> int:
    from repro.core import PagConfig, PagSession

    config = PagConfig.for_system_size(
        args.nodes, stream_rate_kbps=args.rate
    )
    session = PagSession.create(args.nodes, config=config)
    session.run(args.rounds)
    mean = session.mean_bandwidth_kbps(
        warmup_rounds=min(4, args.rounds - 1), direction="down"
    )
    print(
        f"{args.nodes} nodes, {args.rounds} rounds, {args.rate:.0f} Kbps "
        "stream"
    )
    print(f"mean download      : {mean:.0f} Kbps per node")
    print(f"mean continuity    : {session.mean_continuity():.1%}")
    print(f"verdicts           : {len(session.all_verdicts())}")
    ops = session.crypto_report()
    node_rounds = len(session.nodes) * session.current_round
    print(
        f"crypto per node-sec: {ops['signatures'] / node_rounds:.1f} "
        f"signatures, {ops['homomorphic_hashes'] / node_rounds:.0f} "
        "homomorphic hashes"
    )
    return 0


def _cmd_detect(args) -> int:
    import repro.adversary.selfish as selfish
    from repro.core import PagSession

    behavior = getattr(selfish, _STRATEGIES[args.strategy])()
    deviant = args.nodes // 2
    session = PagSession.create(
        args.nodes, behaviors={deviant: behavior}
    )
    session.run(args.rounds)
    print(
        f"deviant node {deviant} runs {type(behavior).__name__} among "
        f"{args.nodes - 1} correct nodes"
    )
    verdicts = session.all_verdicts()
    for verdict in verdicts[:8]:
        print(
            f"  round {verdict.exchange_round:>2}: node {verdict.node} "
            f"GUILTY of {verdict.reason.value} — {verdict.evidence[:70]}"
        )
    convicted = session.convicted_nodes()
    print(f"convicted: {sorted(convicted)} (expected: [{deviant}])")
    return 0 if convicted == {deviant} else 1


def _cmd_fig7(args) -> int:
    from repro.baselines.acting import ActingSession
    from repro.core import PagConfig, PagSession
    from repro.sim.metrics import cdf_points

    n, rounds = args.nodes, args.rounds
    pag = PagSession.create(
        n, config=PagConfig.for_system_size(n, stream_rate_kbps=300.0)
    )
    pag.run(rounds)
    acting = ActingSession.create(n)
    acting.run(rounds)
    pag_bw = pag.bandwidth_kbps(4, direction="down")
    acting_bw = acting.bandwidth_kbps(4, "down")
    print(f"Fig. 7 — bandwidth CDF ({n} nodes, 300 Kbps)")
    print(f"{'CDF %':>6} {'AcTinG':>8} {'PAG':>8}")
    acting_cdf = cdf_points(acting_bw)
    pag_cdf = cdf_points(pag_bw)
    for target in range(10, 101, 20):
        a = next(v for v, p in acting_cdf if p >= target)
        g = next(v for v, p in pag_cdf if p >= target)
        print(f"{target:>5}% {a:>8.0f} {g:>8.0f}")
    print(
        f"means: AcTinG "
        f"{sum(acting_bw.values()) / len(acting_bw):.0f}, PAG "
        f"{sum(pag_bw.values()) / len(pag_bw):.0f} "
        "(paper: 460 / 1050)"
    )
    return 0


def _cmd_fig8(args) -> int:
    from repro.analysis.bandwidth import PagBandwidthModel
    from repro.core import PagConfig

    print("Fig. 8 — bandwidth vs update size (1000 nodes, 300 Kbps)")
    print(f"{'update kb':>10} {'Kbps':>8}")
    for kb in (1, 2, 5, 10, 20, 50, 100):
        config = PagConfig.for_system_size(
            1000, stream_rate_kbps=300.0, update_bytes=int(kb * 125)
        )
        print(
            f"{kb:>10} "
            f"{PagBandwidthModel(config=config).total_kbps():>8.0f}"
        )
    return 0


def _cmd_fig9(args) -> int:
    from repro.analysis.bandwidth import (
        ActingBandwidthModel,
        PagBandwidthModel,
    )

    print("Fig. 9 — scalability with a 300 Kbps stream")
    print(f"{'nodes':>9} {'PAG':>8} {'AcTinG':>8}")
    for n in (10**3, 10**4, 10**5, 10**6):
        pag = PagBandwidthModel.for_system(n, 300.0).total_kbps()
        acting = ActingBandwidthModel.for_system(n, 300.0).total_kbps()
        print(f"{n:>9} {pag:>8.0f} {acting:>8.0f}")
    print("(paper anchors: PAG 2500 / AcTinG 840 at 10^6)")
    return 0


def _cmd_fig10(args) -> int:
    from repro.analysis.privacy import figure10_series

    print("Fig. 10 — interactions discovered vs attacker fraction")
    print(f"{'attackers':>9} {'AcTinG':>8} {'PAG-3':>7} {'PAG-5':>7} {'min':>7}")
    for p in figure10_series([i / 10 for i in range(11)]):
        print(
            f"{p.attacker_fraction:>8.0%} {p.acting:>8.1%} "
            f"{p.pag_3_monitors:>7.1%} {p.pag_5_monitors:>7.1%} "
            f"{p.theoretical_minimum:>7.1%}"
        )
    return 0


def _cmd_table1(args) -> int:
    from repro.analysis.costs import table1_rows

    print("Table I — crypto operations per second per node")
    print(f"{'quality':>8} {'payload':>8} {'sigs/s':>7} {'hashes/s':>9}")
    for row in table1_rows():
        print(
            f"{row.quality:>8} {row.payload_kbps:>8.0f} "
            f"{row.rsa_signatures_per_s:>7.0f} "
            f"{row.homomorphic_hashes_per_s:>9.0f}"
        )
    return 0


def _cmd_table2(args) -> int:
    from repro.analysis.quality import table2

    print("Table II — sustainable quality per link (1000 nodes)")
    for protocol, cells in table2().items():
        print(
            f"  {protocol:<7}: "
            + " | ".join(cell.render() for cell in cells)
        )
    return 0


def _cmd_verify(args) -> int:
    from repro.verifier import case1_network_attacker, f_coalition_attack

    print(f"Symbolic verification of P1 (fanout {args.fanout})")
    case1 = case1_network_attacker(fanout=args.fanout)
    ok = all(v.private for v in case1.values())
    print(f"  case (1) network attacker: {'SAFE' if ok else 'BROKEN'}")
    coalition, victim = f_coalition_attack(fanout=args.fanout)
    print(
        f"  threshold coalition {coalition}: victim prime recovered = "
        f"{victim.prime_derivable}"
    )
    return 0 if ok and victim.prime_derivable else 1


def _cmd_bench(args) -> int:
    from repro.analysis.hotpath import run_hotpath_bench

    report = run_hotpath_bench(
        out_path=args.out,
        quick=args.quick,
        engine_nodes=args.nodes,
        engine_rounds=args.rounds,
    )
    print(f"Hot-path throughput [{report['backend']} backend]")
    print(f"  hashes/s 256-bit : {report['hashes_per_s']['256']:>12,.0f}")
    print(f"  hashes/s 512-bit : {report['hashes_per_s']['512']:>12,.0f}")
    print(
        "  rekeys/s 512-bit : "
        f"{report['rekey_fixed_base_per_s']['512']:>12,.0f}"
    )
    print(f"  primes/s 512-bit : {report['primes_per_s']['512']:>12,.1f}")
    engine = report["engine"]
    print(
        f"  engine rounds/s  : {engine['rounds_per_s']:>12,.2f} "
        f"({engine['nodes']} nodes)"
    )
    print(f"  written          : {args.out}")
    return 0


def _cmd_export(args) -> int:
    from repro.analysis.export import export_all

    written = export_all(args.out)
    for name, path in sorted(written.items()):
        print(f"  {name:<8} -> {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "detect": _cmd_detect,
        "fig7": _cmd_fig7,
        "fig8": _cmd_fig8,
        "fig9": _cmd_fig9,
        "fig10": _cmd_fig10,
        "table1": _cmd_table1,
        "table2": _cmd_table2,
        "verify": _cmd_verify,
        "export": _cmd_export,
        "bench": _cmd_bench,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
