"""Tests for the video quality ladder and playback evaluation."""

import pytest

from repro.gossip.updates import Update, UpdateStore
from repro.streaming.player import evaluate_playback
from repro.streaming.video import (
    LINK_CAPACITIES_KBPS,
    QUALITY_LADDER,
    max_quality_under,
    quality_by_name,
)


class TestQualityLadder:
    def test_table1_rates(self):
        expected = {
            "144p": 80,
            "240p": 300,
            "360p": 750,
            "480p": 1000,
            "720p": 2500,
            "1080p": 4500,
        }
        assert {q.name: q.payload_kbps for q in QUALITY_LADDER} == expected

    def test_quality_by_name(self):
        assert quality_by_name("480p").payload_kbps == 1000
        with pytest.raises(KeyError):
            quality_by_name("4k")

    def test_updates_per_second_matches_paper_unit(self):
        # 1080p at 938 B updates: 4500 Kbps / 7504 bits ~= 600 chunks/s.
        assert quality_by_name("1080p").updates_per_second() == pytest.approx(
            4_500_000 / (938 * 8)
        )

    def test_link_capacities(self):
        assert LINK_CAPACITIES_KBPS["ADSL Lite (1.5Mbps)"] == 1500


class TestMaxQualityUnder:
    def test_picks_highest_fitting(self):
        # Protocol cost = 2x payload: 10 Mbps link fits up to 1080p (9 Mbps).
        got = max_quality_under(10_000, lambda q: 2 * q.payload_kbps)
        assert got.name == "1080p"

    def test_none_when_nothing_fits(self):
        # RAC-like: enormous fixed cost.
        assert max_quality_under(10_000, lambda q: 1e9) is None

    def test_threshold_boundary(self):
        got = max_quality_under(1000, lambda q: q.payload_kbps)
        assert got.name == "480p"


def make_update(uid, created, ttl=10):
    return Update(uid=uid, round_created=created, expiry_round=created + ttl)


class TestPlayback:
    def test_perfect_stream(self):
        released = [make_update(i, created=i) for i in range(5)]
        store = UpdateStore()
        for u in released:
            store.add(u, u.round_created + 3)  # arrives well before deadline
        report = evaluate_playback(released, store, current_round=30)
        assert report.continuity == 1.0
        assert report.chunks_due == 5
        assert report.mean_lag_rounds == 3.0
        assert report.is_watchable()

    def test_missing_and_late_chunks(self):
        released = [make_update(i, created=0) for i in range(4)]
        store = UpdateStore()
        store.add(released[0], 5)  # on time
        store.add(released[1], 12)  # late (deadline 10)
        # released[2], [3] never arrive
        report = evaluate_playback(released, store, current_round=30)
        assert report.chunks_on_time == 1
        assert report.chunks_late == 1
        assert report.chunks_missing == 2
        assert report.continuity == 0.25
        assert not report.is_watchable()

    def test_undue_chunks_not_counted(self):
        released = [make_update(0, created=0, ttl=100)]
        report = evaluate_playback(released, UpdateStore(), current_round=5)
        assert report.chunks_due == 0
        assert report.continuity == 1.0

    def test_warmup_exclusion(self):
        released = [make_update(0, created=0), make_update(1, created=20)]
        store = UpdateStore()
        store.add(released[1], 22)
        report = evaluate_playback(
            released, store, current_round=50, warmup_rounds=10
        )
        assert report.chunks_due == 1
        assert report.continuity == 1.0
