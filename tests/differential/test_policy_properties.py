"""Property-based policy equivalence over randomized scenarios.

Hypothesis drives the spec space the registry does not enumerate:
arbitrary membership sizes, adversary mixes, churn schedules, worker
counts, and (stateful) drop rules.  Whatever it generates, a parallel
run must be bit-identical to the serial reference — including the drop
decisions of an RNG-backed loss rule, which consume randomness in send
order and therefore detect any order divergence instantly.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.scenarios.spec import (  # noqa: E402
    AdversaryGroup,
    ChurnEvent,
    ScenarioSpec,
)
from repro.sim.execution import ParallelShardedPolicy  # noqa: E402
from repro.sim.faults import RandomLoss  # noqa: E402
from repro.sim.rng import SeedSequence  # noqa: E402

from tests.differential.harness import record_scenario  # noqa: E402

STRATEGIES = st.sampled_from(
    ["free-rider", "partial-forwarder", "silent-receiver",
     "declaration-skipper"]
)


@st.composite
def specs(draw):
    nodes = draw(st.integers(min_value=6, max_value=14))
    rounds = draw(st.integers(min_value=4, max_value=6))
    adversaries = ()
    if draw(st.booleans()):
        count = draw(st.integers(min_value=1, max_value=max(1, nodes // 4)))
        adversaries = (
            AdversaryGroup(strategy=draw(STRATEGIES), count=count),
        )
    churn = ()
    if draw(st.booleans()):
        node_id = draw(st.integers(min_value=1, max_value=nodes - 1))
        after = draw(st.integers(min_value=1, max_value=rounds - 2))
        churn = (ChurnEvent(after_round=after, node_id=node_id),)
    return ScenarioSpec(
        name="hypothesis-differential",
        nodes=nodes,
        rounds=rounds,
        warmup_rounds=1,
        stream_rate_kbps=draw(st.sampled_from([150.0, 300.0])),
        adversaries=adversaries,
        churn=churn,
        seed=draw(st.integers(min_value=0, max_value=2**32)),
    )


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    spec=specs(),
    workers=st.integers(min_value=1, max_value=5),
    backend=st.sampled_from(["thread", "serialized"]),
    with_loss=st.booleans(),
)
def test_random_scenarios_are_policy_invariant(
    spec, workers, backend, with_loss
):
    def drop_rule():
        if not with_loss:
            return None
        return RandomLoss(
            probability=0.1,
            kinds={"ack", "serve"},
            rng=SeedSequence(spec.seed).stream("differential-loss"),
        )

    reference = record_scenario(
        spec, None, trace=True, drop_rule=drop_rule()
    )
    policy = ParallelShardedPolicy(workers=workers, backend=backend)
    record = record_scenario(
        spec, policy, trace=True, drop_rule=drop_rule()
    )
    assert record == reference, f"mismatch in {record.diff(reference)}"
