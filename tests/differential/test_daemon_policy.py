"""Every registered scenario, bit-identical through the wire codec.

The loopback :class:`~repro.sim.execution.DaemonPolicy` routes each
deliverable message through the full daemon wire path — encode, frame,
stream reassembly, decode — before it reaches the recipient.  For every
scenario in the registry the resulting run must be *bit-identical* to
the serial policy: same meter bytes, same ordered trace, same verdicts,
same crypto tallies.  That equivalence is what licenses the daemon
runtime's replica-from-spec design: if the codec round-trip perturbed
any observable byte, it would show up here first.
"""

import pytest

from repro.scenarios import scenario_names
from repro.sim.execution import DaemonPolicy

from tests.differential.harness import record_scenario, small_spec


@pytest.mark.parametrize("name", scenario_names())
def test_wire_round_tripped_runs_are_bit_identical(name):
    spec = small_spec(name)
    reference = record_scenario(spec, None, trace=True)
    assert reference.messages_sent > 0
    policy = DaemonPolicy()
    record = record_scenario(spec, policy, trace=True)
    assert record == reference, (
        f"{name} through the wire codec: mismatch in "
        f"{record.diff(reference)}"
    )
    # PAG scenarios must actually exercise the codec; baseline-protocol
    # scenarios pass their foreign message types through unencoded.
    if spec.protocol == "pag":
        assert policy.frames > 0
        assert policy.bytes_on_wire > 0
        assert policy.passthrough == 0
    else:
        assert policy.passthrough > 0


def test_daemon_policy_is_registered():
    from repro.sim.execution import make_policy

    policy = make_policy("daemon")
    assert isinstance(policy, DaemonPolicy)
    assert policy.name == "daemon"
