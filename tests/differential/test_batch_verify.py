"""Batched monitor verification is observably invisible.

``PagConfig.batch_verify`` (default on) lets the monitor engine fold a
round's message-8 lifts with one Straus multi-exponentiation where the
individual lifted values never reach the wire.  The acceptance bar is
the differential one: verdicts, ordered traces, meter snapshots, byte
counts and operation tallies must be bit-identical with the knob on and
off, across the whole scenario registry and under every execution
policy.  The fold genuinely engages when a node has a single monitor
(no peers to broadcast lifted values to), so that shape gets dedicated
coverage — including the assertion that the batched path actually ran.
"""

import dataclasses

import pytest

from repro.scenarios import get_scenario, scenario_names
from repro.sim.execution import ParallelShardedPolicy, ShardedPolicy

from tests.differential.harness import (
    record_scenario,
    small_spec,
    workers_under_test,
)

WORKERS = workers_under_test()

PAG_SCENARIOS = [
    name
    for name in scenario_names()
    if get_scenario(name).protocol == "pag"
]


def _batch_off(spec):
    return dataclasses.replace(spec, batch_verify=False)


@pytest.mark.parametrize("name", PAG_SCENARIOS)
def test_batch_off_is_bit_identical_across_registry(name):
    """Full registry: the fold strategy never changes an observable."""
    spec = small_spec(name)
    on = record_scenario(spec, None, trace=True)
    off = record_scenario(_batch_off(spec), None, trace=True)
    assert on == off, f"{name}: batch_verify changed {on.diff(off)}"


def _single_monitor_spec(name="fig7", **extra):
    """A spec whose nodes have exactly one monitor: the only shape where
    lifted pairs never leave the engine, so lifts defer into the batch."""
    return small_spec(name, monitors_per_node=1, **extra)


def test_deferred_fold_engages_with_single_monitors():
    """fm=1: the batched path must actually run (not just be wired)."""
    spec = _single_monitor_spec()
    session = spec.build(None)
    session.run(spec.rounds)
    assert session.context.hasher.batched_lifts > 0
    # Accounting invariant: every protocol-level call in one bucket.
    hasher = session.context.hasher
    assert hasher.operations == (
        hasher.memo_hits
        + hasher.fixed_base_hits
        + hasher.cold_powmods
        + hasher.batched_lifts
    )
    # And the unbatched twin performed zero batched lifts but tallied
    # the same protocol-level operation count.
    twin = _batch_off(spec).build(None)
    twin.run(spec.rounds)
    assert twin.context.hasher.batched_lifts == 0
    assert twin.context.hasher.operations == hasher.operations


@pytest.mark.parametrize("name", ["fig7", "selfish", "churn"])
def test_single_monitor_batch_on_off_identical(name):
    spec = _single_monitor_spec(name)
    on = record_scenario(spec, None, trace=True)
    off = record_scenario(_batch_off(spec), None, trace=True)
    assert on.messages_sent > 0
    assert on == off, f"{name} fm=1: batch_verify changed {on.diff(off)}"


def test_deferred_fold_identical_under_every_policy():
    """fm=1 with batch on, under serial / sharded / worker-backed
    replicas (both merge modes): all equal, and equal to batch off."""
    spec = _single_monitor_spec()
    reference = record_scenario(spec, None, trace=True)
    policies = [
        ("sharded", ShardedPolicy(shards=3)),
        (
            "parallel-thread",
            ParallelShardedPolicy(workers=WORKERS, backend="thread"),
        ),
        (
            "parallel-serialized",
            ParallelShardedPolicy(workers=WORKERS + 1, backend="serialized"),
        ),
    ]
    for label, policy in policies:
        record = record_scenario(spec, policy, trace=True)
        assert record == reference, (
            f"fm=1 under {label}: mismatch in {record.diff(reference)}"
        )
    # Replica workers inherit the spec-level knob: a batch-off parallel
    # run equals the batch-on serial reference bit for bit.
    off_policy = ParallelShardedPolicy(workers=WORKERS, backend="thread")
    off = record_scenario(_batch_off(spec), off_policy, trace=True)
    assert off == reference, f"mismatch in {off.diff(reference)}"
    # Metadata fast path too (no tap installed).
    fast_ref = record_scenario(spec, None, trace=False)
    fast_policy = ParallelShardedPolicy(workers=WORKERS, backend="thread")
    fast = record_scenario(spec, fast_policy, trace=False)
    assert fast == fast_ref, f"mismatch in {fast.diff(fast_ref)}"
