"""Differential execution-policy harness.

Runs one scenario under an execution policy and captures *everything
observable*: the full meter snapshot (per-node totals and per-round
series), the ordered message trace, verdict outcomes, playback
continuity, and the crypto operation counters.  Two records being equal
is the definition of "bit-identical" used by the policy-equivalence
suite: if any byte of accounting, any message's order, or any verdict
differed, the records would differ.

The harness instruments the parent network with a
:class:`~repro.sim.trace.TraceRecorder` tap when asked — which also
forces the parallel backend onto its full-fidelity capture path, so
both of its merge modes (captures and metadata) get differential
coverage.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.scenarios.spec import ScenarioResult, ScenarioSpec
from repro.sim.execution import ExecutionPolicy
from repro.sim.trace import TraceRecorder

__all__ = [
    "RunRecord",
    "record_scenario",
    "workers_under_test",
    "small_spec",
    "SMALL",
    "FIXED_SCALE",
]

#: Smoke scale for the registry sweep; big memberships shrink to this.
SMALL = dict(nodes=14, rounds=6, warmup_rounds=2)

#: Scenarios whose declared membership/churn/arrival/ramp schedule must
#: not be shrunk (they name concrete node ids or concrete rounds).
FIXED_SCALE = {
    "churn",
    "coalition-third",
    "join-churn",
    "coalition-mixed",
    "rate-ramp",
}


def workers_under_test(default: int = 2) -> int:
    """Worker count under test; the CI parallel-policy job sweeps it."""
    return int(os.environ.get("REPRO_TEST_WORKERS", default))


def small_spec(name: str, **extra) -> ScenarioSpec:
    """A registry spec at differential-suite scale.

    The spec's own ``policy`` knob is stripped so the harness's policy
    argument is the only execution variable.
    """
    from repro.scenarios import get_scenario

    spec = get_scenario(name)
    overrides = dict(extra)
    if name not in FIXED_SCALE:
        overrides.update(SMALL)
        if spec.population:
            # Population specs shrink their plane too (a million-node
            # plane has no place in a smoke sweep); the plane attaches
            # to the engine regardless of policy, so the cohort's
            # cross-policy bit-identity checks run unchanged.
            overrides.setdefault("population", 56)
    spec = spec.with_overrides(**overrides)
    return dataclasses.replace(spec, policy=None)


@dataclass
class RunRecord:
    """Everything observable about one scenario run."""

    meter: Dict[str, object]
    trace: Optional[List[tuple]]
    verdicts: List[Tuple[int, str, int, int]]
    messages_sent: int
    messages_dropped: int
    node_kbps: Dict[int, float]
    continuity: Optional[float]
    ops: Dict[str, int]

    def __eq__(self, other: object) -> bool:  # pragma: no cover - dataclass
        if not isinstance(other, RunRecord):
            return NotImplemented
        return self.__dict__ == other.__dict__

    def diff(self, other: "RunRecord") -> List[str]:
        """Names of the fields that differ (for readable assertions)."""
        return [
            key
            for key in self.__dict__
            if getattr(self, key) != getattr(other, key)
        ]


def _ops_of(session) -> Dict[str, int]:
    context = getattr(session, "context", None)
    if context is None:
        return {}
    return {
        "hashes": context.hasher.operations,
        "encryptions": context.counters.encryptions,
        "decryptions": context.counters.decryptions,
        "prime_generations": context.counters.prime_generations,
        "signatures": context.signer.counters.signatures,
        "verifications": context.signer.counters.verifications,
    }


def record_scenario(
    spec: ScenarioSpec,
    policy: Optional[ExecutionPolicy],
    trace: bool = True,
    drop_rule=None,
    config_overrides: Optional[Dict] = None,
) -> RunRecord:
    """Run ``spec`` under ``policy`` and capture a full :class:`RunRecord`.

    Args:
        trace: install a :class:`TraceRecorder` tap (forces the parallel
            backend onto full-fidelity captures).  Without it the
            backend uses its metadata fast path and the record carries
            ``trace=None``.
        drop_rule: optional fault-injection predicate added to the
            parent network before the run (also forces full fidelity).
        config_overrides: extra :class:`~repro.core.config.PagConfig`
            fields; PAG protocol only.  Refused for replica-backed
            policies (their workers rebuild from the bare spec, so the
            overrides would silently not reach them — use a spec field
            like ``ScenarioSpec.batch_verify`` instead).
    """
    if config_overrides:
        if policy is not None and hasattr(policy, "bind_scenario"):
            raise ValueError(
                "config_overrides do not propagate to replica workers; "
                "encode the knob in the spec instead"
            )
        session = spec.build_pag_with(policy, **config_overrides)
    else:
        session = spec.build(policy)
    tap = None
    if trace:
        tap = TraceRecorder()
        session.simulator.network.add_tap(tap)
    if drop_rule is not None:
        session.simulator.network.add_drop_rule(drop_rule)
    try:
        session.run(spec.rounds)
        if policy is not None:
            policy.sync_session(session)
        result = ScenarioResult.collect(spec, session)
        network = session.simulator.network
        return RunRecord(
            meter=network.meter.snapshot(),
            trace=(
                [
                    (r.round_no, r.sender, r.recipient, r.kind, r.size)
                    for r in tap
                ]
                if tap is not None
                else None
            ),
            verdicts=sorted(
                (v.node, v.reason.value, v.exchange_round, v.detected_by)
                for v in session.all_verdicts()
            ),
            messages_sent=network.messages_sent,
            messages_dropped=network.messages_dropped,
            node_kbps=result.node_kbps,
            continuity=result.continuity,
            ops=_ops_of(session),
        )
    finally:
        if policy is not None:
            policy.close()
        # Population planes own spill temp dirs; RunRecords never read
        # them, so close here rather than leak on every recorded run.
        for plane in getattr(session.simulator, "planes", ()):
            plane.close()
