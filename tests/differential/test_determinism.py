"""Determinism regressions: same spec + seed => same run, always.

Two independent runs of the same spec under the same policy must be
identical (the whole simulation is a function of the seed), and the
worker count must never leak into results — partitioning changes which
replica executes a node, not what the node does.
"""

import pytest

from repro.sim.execution import (
    ParallelShardedPolicy,
    SerialPolicy,
    ShardedPolicy,
)

from tests.differential.harness import record_scenario, small_spec


def _spec():
    return small_spec("selfish")


@pytest.mark.parametrize(
    "make",
    [
        lambda: SerialPolicy(),
        lambda: ShardedPolicy(shards=4),
        lambda: ParallelShardedPolicy(workers=3, backend="thread"),
        lambda: ParallelShardedPolicy(workers=2, backend="process"),
    ],
    ids=["serial", "sharded", "parallel-thread", "parallel-process"],
)
def test_same_seed_twice_is_identical(make):
    spec = _spec()
    first = record_scenario(spec, make(), trace=True)
    second = record_scenario(spec, make(), trace=True)
    assert first == second, f"mismatch in {first.diff(second)}"


def test_worker_count_does_not_change_results():
    spec = _spec()
    reference = record_scenario(spec, None, trace=True)
    for workers in (1, 2, 5, 9):
        policy = ParallelShardedPolicy(workers=workers, backend="thread")
        record = record_scenario(spec, policy, trace=True)
        assert record == reference, (
            f"workers={workers}: mismatch in {record.diff(reference)}"
        )


def test_worker_count_does_not_change_fast_path_results():
    spec = _spec()
    reference = record_scenario(spec, None, trace=False)
    for workers in (2, 4):
        policy = ParallelShardedPolicy(workers=workers, backend="thread")
        record = record_scenario(spec, policy, trace=False)
        assert record == reference, (
            f"workers={workers}: mismatch in {record.diff(reference)}"
        )


def test_churn_schedule_is_deterministic_under_parallel():
    spec = small_spec("churn")
    reference = record_scenario(spec, None, trace=True)
    for workers in (2, 3):
        policy = ParallelShardedPolicy(workers=workers, backend="thread")
        record = record_scenario(spec, policy, trace=True)
        assert record == reference, (
            f"workers={workers}: mismatch in {record.diff(reference)}"
        )
