"""Every registered scenario, bit-identical under every policy.

The acceptance bar of the parallel execution backend: for each scenario
in the registry, a serial run, a sharded run, and worker-backed parallel
runs must produce byte-identical meter snapshots (totals and per-round
series), the same ordered message trace, the same verdict outcomes, and
the same crypto operation counts.  The traced sweep pins the parallel
backend to its full-fidelity capture path; the untraced sweep covers
the metadata fast path (payloads crossing as opaque blobs, parent
metering from metadata alone).
"""

import pytest

from repro.scenarios import scenario_names
from repro.sim.execution import ParallelShardedPolicy, ShardedPolicy

from tests.differential.harness import (
    record_scenario,
    small_spec,
    workers_under_test,
)

WORKERS = workers_under_test()

#: The full registry sweep runs thread-backed workers (cheap pools, same
#: orchestration/merge code as process mode); process pools are
#: exercised on a representative subset below.
PROCESS_SCENARIOS = ("fig7", "selfish", "churn")


def _policies():
    return [
        ("sharded", ShardedPolicy(shards=3)),
        (
            "parallel-thread",
            ParallelShardedPolicy(workers=WORKERS, backend="thread"),
        ),
        (
            "parallel-serialized",
            ParallelShardedPolicy(workers=WORKERS + 1, backend="serialized"),
        ),
    ]


@pytest.mark.parametrize("name", scenario_names())
def test_traced_runs_are_bit_identical(name):
    spec = small_spec(name)
    reference = record_scenario(spec, None, trace=True)
    assert reference.messages_sent > 0
    for label, policy in _policies():
        record = record_scenario(spec, policy, trace=True)
        assert record == reference, (
            f"{name} under {label}: mismatch in {record.diff(reference)}"
        )


@pytest.mark.parametrize("name", scenario_names())
def test_fast_path_runs_are_bit_identical(name):
    """No taps/drop rules: the parallel backend's metadata merge."""
    spec = small_spec(name)
    reference = record_scenario(spec, None, trace=False)
    policy = ParallelShardedPolicy(workers=WORKERS, backend="thread")
    record = record_scenario(spec, policy, trace=False)
    assert record == reference, (
        f"{name}: mismatch in {record.diff(reference)}"
    )


@pytest.mark.parametrize("name", PROCESS_SCENARIOS)
def test_process_pool_runs_are_bit_identical(name):
    """Real process workers: replicas cross a pickling boundary."""
    spec = small_spec(name)
    reference = record_scenario(spec, None, trace=True)
    policy = ParallelShardedPolicy(workers=WORKERS, backend="process")
    record = record_scenario(spec, policy, trace=True)
    assert policy.mode == "process"
    assert record == reference, (
        f"{name}: mismatch in {record.diff(reference)}"
    )
    # And the metadata fast path across real process boundaries.
    fast_ref = record_scenario(spec, None, trace=False)
    policy = ParallelShardedPolicy(workers=WORKERS, backend="process")
    fast = record_scenario(spec, policy, trace=False)
    assert fast == fast_ref, f"{name}: mismatch in {fast.diff(fast_ref)}"
