"""FaultFuzzHarness: Hypothesis-driven fault & adversary fuzzing.

Generalises the property specs into a registered scenario generator:
random fault schedules x adversary mixes x churn (including a deviant
leaving just before its conviction), with the three fuzz invariants
asserted on every draw — zero false convictions, every seeded deviant
convicted, and bit-identity across execution policies.  On failure
Hypothesis shrinks the draw; the test prints the JSON spec so the
failing scenario replays exactly via ``repro fuzz --replay``.

The draws ride on :mod:`repro.scenarios.fuzz`: Hypothesis supplies the
entropy (so its shrinker steers generation), the module supplies the
invariant-safe envelope and the checking machinery shared with the
``repro fuzz`` CLI and the nightly CI lane.
"""

import json
import random

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, example, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.scenarios.fuzz import (  # noqa: E402
    FuzzConfig,
    draw_spec,
    run_iteration,
    spec_from_json,
    spec_to_json,
)

#: Two-policy cross-check keeps Hypothesis examples fast; the nightly
#: ``repro fuzz`` lane covers the full three-policy matrix.
CONFIG = FuzzConfig(
    iterations=1,
    policies=("serial", "parallel"),
    workers=2,
    min_nodes=8,
    max_nodes=13,
    min_rounds=7,
    max_rounds=8,
    max_faults=3,
    shrink=False,
)


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(entropy=st.integers(min_value=0, max_value=2**48))
# This entropy once convicted an honest node: its declaration went to
# an outaged designated monitor and the old one-monitor-per-round
# redeclaration retry hit a just-churned peer, missing the obligation
# deadline.  Fixed by fanning the retry to every untried monitor;
# pinned so the draw re-runs on every CI pass.
@example(entropy=1_509_309_443)
def test_fuzz_invariants_hold_on_random_draws(entropy):
    """The harness proper: one random scenario per example, all three
    invariants checked, the replayable spec printed on failure."""
    spec = draw_spec(random.Random(entropy), entropy, CONFIG)
    violations, _record = run_iteration(spec, CONFIG)
    assert not violations, (
        f"{violations}; replay spec: {json.dumps(spec_to_json(spec))}"
    )


@given(entropy=st.integers(min_value=0, max_value=2**48))
@settings(max_examples=20, deadline=None)
def test_generated_specs_round_trip_through_json(entropy):
    """The shrunken-repro artifact is lossless: spec -> JSON -> spec is
    the identity on everything that determines a run."""
    spec = draw_spec(random.Random(entropy), entropy, CONFIG)
    clone = spec_from_json(json.loads(json.dumps(spec_to_json(spec))))
    assert clone.nodes == spec.nodes
    assert clone.rounds == spec.rounds
    assert clone.seed == spec.seed
    assert clone.node_strategies == spec.node_strategies
    assert clone.churn == spec.churn
    assert clone.fault_schedule == spec.fault_schedule


@given(entropy=st.integers(min_value=0, max_value=2**48))
@settings(max_examples=20, deadline=None)
def test_generated_specs_stay_in_safe_envelope(entropy):
    """Generator self-check: draws only fault the data plane, keep
    delays to one chain stage, and never target deviants with outages
    or cuts — the envelope the invariants are proved for."""
    from repro.sim.faults import (
        DelayFault,
        LinkCutFault,
        LossFault,
        OutageFault,
    )
    from repro.scenarios.fuzz import DELAY_KIND_CHOICES, EXCHANGE_KINDS

    spec = draw_spec(random.Random(entropy), entropy, CONFIG)
    deviants = set(spec.deviant_nodes())
    delays = 0
    for fault in spec.fault_schedule:
        if isinstance(fault, LossFault):
            assert set(fault.kinds) <= set(EXCHANGE_KINDS)
        if isinstance(fault, DelayFault):
            delays += 1
            assert any(
                set(fault.kinds) <= set(choice)
                for choice in DELAY_KIND_CHOICES
            )
        if isinstance(fault, OutageFault):
            assert fault.node_id not in deviants
        if isinstance(fault, LinkCutFault):
            assert not {n for link in fault.links for n in link} & deviants
    assert delays <= 1


def test_deviant_leaving_before_conviction_is_still_settled():
    """The churn x adversary corner the ISSUE singles out: a deviant
    that leaves mid-run (possibly before its conviction lands) must
    still end up convicted — leaving looks exactly like refusing."""
    from repro.scenarios.spec import ChurnEvent, ScenarioSpec

    spec = ScenarioSpec(
        name="leaver",
        nodes=12,
        rounds=8,
        warmup_rounds=2,
        node_strategies=((5, "silent-receiver"),),
        churn=(ChurnEvent(after_round=2, node_id=5),),
        seed=29,
    )
    violations, record = run_iteration(spec, CONFIG)
    assert not violations
    assert 5 in {v[0] for v in record["verdicts"]}
