"""Tests for coalition discovery logic and the global observer."""

import pytest

from repro.adversary.coalition import Coalition
from repro.adversary.observer import GlobalObserver
from repro.core import PagSession
from repro.membership.directory import Directory
from repro.membership.views import ViewProvider
from repro.sim.rng import SeedSequence


def make_views(n=60, fanout=3, monitors=3, seed=2):
    return ViewProvider(
        directory=Directory.of_size(n),
        seeds=SeedSequence(seed),
        fanout=fanout,
        monitors_per_node=monitors,
    )


class TestCoalitionStructure:
    def test_corrupted_endpoint_discovers(self):
        views = make_views()
        coalition = Coalition(members={5})
        succ = views.successors(5, 1)[0]
        outcome = coalition.discovers_exchange(views, 5, succ, 1)
        assert outcome.discovered
        assert "endpoint" in outcome.how

    def test_no_monitor_no_discovery(self):
        views = make_views()
        # Corrupt everything except node 1, its monitors, successors of
        # interest... simplest: corrupt two arbitrary nodes that are
        # neither endpoints nor monitors of the receiver.
        receiver = 10
        monitors = set(views.monitors(receiver))
        pool = [
            m
            for m in views.directory.members
            if m not in monitors and m not in (1, receiver)
        ]
        coalition = Coalition(members=set(pool[:2]))
        outcome = coalition.discovers_exchange(views, 1, receiver, 1)
        if not set(views.predecessors(receiver, 1)) - coalition.members:
            pytest.skip("random topology corrupted all predecessors")
        assert not outcome.discovered

    def test_full_condition_discovers(self):
        views = make_views()
        receiver = 10
        round_no = 3
        preds = views.predecessors(receiver, round_no)
        if len(preds) < 2:
            pytest.skip("receiver has too few predecessors this round")
        victim = preds[0]
        members = set(preds[1:]) | {views.monitors(receiver)[0]}
        coalition = Coalition(members=members)
        outcome = coalition.discovers_exchange(
            views, victim, receiver, round_no
        )
        assert outcome.discovered

    def test_empty_coalition_discovers_nothing(self):
        views = make_views(n=30)
        coalition = Coalition(members=set())
        rate, discovered, total = coalition.discovery_rate(views, [0, 1])
        assert discovered == 0
        assert total > 0
        assert rate == 0.0

    def test_rate_monotone_in_coalition_size(self):
        views = make_views(n=60)
        small = Coalition(members=set(range(1, 7)))
        large = Coalition(members=set(range(1, 25)))
        rate_small, _, _ = small.discovery_rate(views, [1])
        rate_large, _, _ = large.discovery_rate(views, [1])
        assert rate_large >= rate_small


class TestGlobalObserver:
    @pytest.fixture(scope="class")
    def observed_session(self):
        session = PagSession.create(16)
        observer = GlobalObserver()
        session.simulator.network.add_tap(observer)
        session.run(8)
        return session, observer

    def test_sees_communication_graph(self, observed_session):
        session, observer = observed_session
        graph = observer.communication_graph()
        assert len(graph) > 0
        # Every serving relation of round 3 matches the views.
        for server, receiver in observer.serving_relations(3):
            if server == session.source.node_id:
                continue
            assert receiver in session.context.views.successors(server, 3)

    def test_traffic_volume_positive(self, observed_session):
        _, observer = observed_session
        assert observer.traffic_volume(3) > 0

    def test_wire_carries_no_update_identifiers(self, observed_session):
        """P1 sanity at the metadata level: the observer's records hold
        node ids, sizes and kinds only — nothing names an update."""
        _, observer = observed_session
        for record in observer.trace:
            assert not hasattr(record, "uids")
            assert not hasattr(record, "updates")

    def test_no_accusations_in_honest_run(self, observed_session):
        _, observer = observed_session
        assert observer.accusation_exposures() == []

    def test_payload_estimate_leaks_volume_only(self, observed_session):
        session, observer = observed_session
        link = next(iter(observer.serving_relations(3)))
        estimate = observer.payload_estimate(*link)
        assert estimate > 0  # volume is visible...
        # ...but the encrypted kinds never show up as plaintext.
        visible = observer.visible_plaintext_fields()
        assert "serve" not in visible
        assert "key_response" not in visible
