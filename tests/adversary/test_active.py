"""Active-attacker tests: replay and injection must be neutralised.

Section III's opponent is *active*: it "can replay, or inject messages
in the network" (section VI-A, case 1).  The protocol's defences are
signatures (forgeries rejected), idempotent handlers and per-round
fresh primes (replays inert).  Framing attempts — injecting evidence to
convict an honest node — must never produce a verdict.
"""

import pytest

from repro.adversary.active import ActiveInjector
from repro.core import PagSession


@pytest.fixture()
def attacked_session():
    session = PagSession.create(16)
    injector = ActiveInjector(session).attach()
    return session, injector


def test_replayed_traffic_is_inert(attacked_session):
    session, injector = attacked_session
    session.run(6)
    picked = injector.replay_recent(limit=200)
    assert picked > 0
    session.run(6)
    assert injector.injected > 0
    assert session.all_verdicts() == []
    assert session.mean_continuity() > 0.99


def test_replayed_acks_specifically(attacked_session):
    session, injector = attacked_session
    session.run(6)
    injector.replay_recent(kinds={"ack", "ack_copy", "ack_relay"}, limit=100)
    session.run(6)
    assert session.all_verdicts() == []


def test_forged_ack_cannot_discharge_an_obligation(attacked_session):
    """A forged Ack 'from' an honest receiver carries an invalid
    signature: servers must ignore it and the accusation path must
    still treat the exchange as unacknowledged if the real ack is
    missing — no state corruption either way."""
    session, injector = attacked_session
    session.run(4)
    injector.forge_ack(victim=5, server=3, round_no=4)
    session.run(6)
    assert session.all_verdicts() == []


def test_forged_relay_cannot_frame_a_server(attacked_session):
    """Inject message-9 relays with wrong hashes against an honest
    server: monitors must reject the invalid signature instead of
    convicting the server of a wrong forward set."""
    session, injector = attacked_session
    session.run(4)
    victim_server = 3
    monitors = session.context.monitors_of(victim_server)
    for monitor in monitors:
        injector.forge_ack_relay(
            to_monitor=monitor,
            server=victim_server,
            receiver=7,
            round_no=5,
        )
    session.run(6)
    assert victim_server not in session.convicted_nodes()
    assert session.all_verdicts() == []


def test_attacker_absorbs_responses_silently(attacked_session):
    """Messages addressed to the ghost attacker id are dropped without
    crashing anyone."""
    session, injector = attacked_session
    session.run(3)
    # Nothing in the honest run addresses the attacker; just assert the
    # simulator still runs with the ghost registered.
    assert ActiveInjector.ATTACKER_ID in session.simulator.nodes
