"""Tier-1 perf smoke test: throughput floors for the hot paths.

The floors are set 5-10x below what the slowest supported configuration
(pure Python, shared CI runners) measures, so the test guards against
order-of-magnitude regressions — an accidentally quadratic drain loop,
hashing falling off the fixed-base path — without ever flaking on a
busy machine.  The full numbers live in ``benchmarks/bench_hotpath.py``
and ``BENCH_hotpath.json``.
"""

from repro.analysis.hotpath import (
    measure_engine_throughput,
    measure_hash_throughput,
    measure_prime_throughput,
)

#: Pure Python measures ~1,300 512-bit hashes/s on a 2020s laptop core.
MIN_HASHES_PER_S_512 = 150

#: A 30-node session runs ~15-20 rounds/s after the hot-loop overhaul.
MIN_ENGINE_ROUNDS_PER_S = 1.0

#: The sieve-windowed pool draws hundreds of 128-bit primes per second.
MIN_PRIMES_PER_S_128 = 30


def test_hash_throughput_floor_512():
    assert measure_hash_throughput(512, seconds=0.1) > MIN_HASHES_PER_S_512


def test_engine_round_throughput_floor():
    result = measure_engine_throughput(nodes=30, rounds=5)
    assert result["rounds_per_s"] > MIN_ENGINE_ROUNDS_PER_S
    # The session must have actually exercised the crypto path.
    assert result["hashes"] > 1000


def test_prime_pool_throughput_floor():
    assert (
        measure_prime_throughput(bits=128, count=20) > MIN_PRIMES_PER_S_128
    )
