"""Tests for the Dolev-Yao deduction engine."""

from repro.verifier.deduction import analyze, can_derive
from repro.verifier.terms import (
    AEnc,
    Atom,
    HHash,
    Pair,
    PrivKey,
    Prod,
    Sig,
)


class TestAnalysis:
    def test_unpairing(self):
        k = analyze([Pair(Atom("a"), Atom("b"))])
        assert Atom("a") in k and Atom("b") in k

    def test_signature_reveals_message(self):
        k = analyze([Sig(Atom("m"), "A")])
        assert Atom("m") in k

    def test_decrypt_with_key(self):
        k = analyze([AEnc(Atom("m"), "B"), PrivKey("B")])
        assert Atom("m") in k

    def test_no_decrypt_without_key(self):
        k = analyze([AEnc(Atom("m"), "B")])
        assert Atom("m") not in k

    def test_nested_destructuring(self):
        term = AEnc(Sig(Pair(Atom("p"), Atom("q")), "A"), "B")
        k = analyze([term, PrivKey("B")])
        assert Atom("p") in k and Atom("q") in k

    def test_product_division(self):
        k = analyze([Prod.of("p1", "p2", "p3"), Atom("p2"), Atom("p3")])
        assert Prod.of("p1") in k
        assert Atom("p1") in k

    def test_no_factoring_without_knowledge(self):
        k = analyze([Prod.of("p1", "p2")])
        assert Atom("p1") not in k
        assert Atom("p2") not in k

    def test_division_leaves_composite_residual_unfactored(self):
        k = analyze([Prod.of("p1", "p2", "p3"), Atom("p3")])
        assert Prod.of("p1", "p2") in k
        assert Atom("p1") not in k


class TestSynthesis:
    def test_pairing(self):
        k = analyze([Atom("a"), Atom("b")])
        assert can_derive(Pair(Atom("a"), Atom("b")), k)

    def test_encryption_always_possible_to_known_agents(self):
        k = analyze([Atom("m")])
        assert can_derive(AEnc(Atom("m"), "B"), k)

    def test_signing_needs_private_key(self):
        k = analyze([Atom("m")])
        assert not can_derive(Sig(Atom("m"), "A"), k)
        k2 = analyze([Atom("m"), PrivKey("A")])
        assert can_derive(Sig(Atom("m"), "A"), k2)

    def test_atoms_not_inventable(self):
        assert not can_derive(Atom("secret"), analyze([Atom("other")]))

    def test_product_multiplication(self):
        k = analyze([Atom("p1"), Atom("p2")])
        assert can_derive(Prod.of("p1", "p2"), k)
        assert not can_derive(Prod.of("p1", "p3"), k)

    def test_hash_from_base_and_key(self):
        k = analyze([Atom("u"), Atom("p")])
        assert can_derive(HHash.of(["u"], ["p"]), k)

    def test_hash_not_invertible(self):
        k = analyze([HHash.of(["u"], ["p"])])
        assert not can_derive(Atom("u"), k)
        assert not can_derive(Prod.of("p"), k)

    def test_rekeying(self):
        """H(u)_(p1) + p2 derives H(u)_(p1*p2) — the monitors' lift."""
        k = analyze([HHash.of(["u"], ["p1"]), Atom("p2")])
        assert can_derive(HHash.of(["u"], ["p1", "p2"]), k)
        assert not can_derive(HHash.of(["u"], ["p1", "p3"]), k)

    def test_combination(self):
        """H(u1)_K * H(u2)_K derives H(u1*u2)_K — the product rule."""
        k = analyze(
            [HHash.of(["u1"], ["p"]), HHash.of(["u2"], ["p"])]
        )
        assert can_derive(HHash.of(["u1", "u2"], ["p"]), k)

    def test_combination_requires_matching_keys(self):
        k = analyze(
            [HHash.of(["u1"], ["p1"]), HHash.of(["u2"], ["p2"])]
        )
        assert not can_derive(HHash.of(["u1", "u2"], ["p1"]), k)

    def test_cofactor_attack_end_to_end(self):
        """The heart of the f-coalition attack: a cofactor plus the
        other primes isolates the victim's prime and enables the
        dictionary hash."""
        k = analyze(
            [
                Prod.of("p1", "p3"),  # cofactor_2 held by a monitor
                Atom("p1"),  # colluding predecessor's prime
                Atom("u_probe"),  # public candidate update
            ]
        )
        assert can_derive(Prod.of("p3"), k)
        assert can_derive(HHash.of(["u_probe"], ["p3"]), k)

    def test_two_honest_primes_resist(self):
        k = analyze([Prod.of("p1", "p2", "p3"), Atom("p1"), Atom("u")])
        assert not can_derive(Prod.of("p2"), k)
        assert not can_derive(HHash.of(["u"], ["p2"]), k)
