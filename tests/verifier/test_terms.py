"""Tests for the symbolic term algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.verifier.terms import (
    AEnc,
    Atom,
    HHash,
    Pair,
    PrivKey,
    Prod,
    PubKey,
    Sig,
    is_subset,
    multiset,
    multiset_subtract,
    multiset_union,
    tuple_term,
)


class TestMultisets:
    def test_build_from_iterable(self):
        assert multiset(["b", "a", "a"]) == (("a", 2), ("b", 1))

    def test_build_from_mapping(self):
        assert multiset({"a": 2, "b": 1}) == (("a", 2), ("b", 1))
        assert multiset({"a": 0}) == ()

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            multiset({"a": -1})

    def test_union(self):
        a = multiset(["x", "y"])
        b = multiset(["y", "z"])
        assert multiset_union(a, b) == (("x", 1), ("y", 2), ("z", 1))

    def test_subset(self):
        assert is_subset(multiset(["x"]), multiset(["x", "y"]))
        assert not is_subset(multiset(["x", "x"]), multiset(["x", "y"]))

    def test_subtract(self):
        a = multiset(["x", "x", "y"])
        assert multiset_subtract(a, multiset(["x"])) == (
            ("x", 1),
            ("y", 1),
        )
        with pytest.raises(ValueError):
            multiset_subtract(multiset(["x"]), multiset(["z"]))

    @given(
        st.lists(st.sampled_from("abcd"), max_size=6),
        st.lists(st.sampled_from("abcd"), max_size=6),
    )
    @settings(max_examples=60)
    def test_union_subtract_roundtrip(self, xs, ys):
        a, b = multiset(xs), multiset(ys)
        assert multiset_subtract(multiset_union(a, b), b) == a


class TestTerms:
    def test_atoms_equal_by_name(self):
        assert Atom("u1") == Atom("u1")
        assert Atom("u1") != Atom("u2")

    def test_terms_hashable(self):
        terms = {
            Atom("x"),
            PubKey("A"),
            PrivKey("A"),
            Pair(Atom("x"), Atom("y")),
            AEnc(Atom("x"), "B"),
            Sig(Atom("x"), "A"),
            Prod.of("p1", "p2"),
            HHash.of(["u1"], ["p1"]),
        }
        assert len(terms) == 8

    def test_prod_of(self):
        assert Prod.of("p1", "p1", "p2").primes == (("p1", 2), ("p2", 1))

    def test_hhash_normal_form_is_order_free(self):
        assert HHash.of(["u1", "u2"], ["p1", "p2"]) == HHash.of(
            ["u2", "u1"], ["p2", "p1"]
        )

    def test_hhash_multiplicity_matters(self):
        assert HHash.of(["u1", "u1"], ["p1"]) != HHash.of(["u1"], ["p1"])

    def test_tuple_term_right_nested(self):
        t = tuple_term(Atom("a"), Atom("b"), Atom("c"))
        assert t == Pair(Atom("a"), Pair(Atom("b"), Atom("c")))
        with pytest.raises(ValueError):
            tuple_term()

    def test_reprs_are_readable(self):
        assert repr(Prod.of("p1", "p2")) == "p1*p2"
        assert "H(" in repr(HHash.of(["u1"], ["p1"]))
        assert repr(PubKey("A")) == "pk(A)"
