"""The section VI-A verification results, reproduced.

Paper claims checked here:

* Case (1): "ProVerif proves that no attack exists on the cryptographic
  procedures of PAG" against a global network attacker.
* Case (2): "no attacks exist if the opponent controls less than f
  nodes" — for the coalition compositions the paper enumerates
  (monitor-only and predecessor-only coalitions).  Our engine
  additionally confirms the *quantitative* criterion of section VII-E:
  an exchange is discovered exactly when all the receiver's
  predecessors except at most two collude together with a monitor
  holding a useful cofactor.
* The attack at the threshold: "ProVerif found it ... the opponent is
  able to obtain the prime numbers that B generated".
* "Increasing the value of f reinforces the security of the protocol."
"""

import pytest

from repro.verifier.protocol import PagScenario
from repro.verifier.scenarios import (
    case1_network_attacker,
    case2_coalitions,
    check_secrecy,
    f_coalition_attack,
)


class TestCase1NetworkAttacker:
    def test_all_links_private_at_f3(self):
        verdicts = case1_network_attacker(fanout=3)
        assert all(v.private for v in verdicts.values())

    @pytest.mark.parametrize("fanout", [4, 5])
    def test_all_links_private_at_higher_fanout(self, fanout):
        verdicts = case1_network_attacker(fanout=fanout)
        assert all(v.private for v in verdicts.values())


class TestCase2Coalitions:
    def test_monitor_only_coalitions_are_safe(self):
        """The paper's '(f-1) monitors' composition: safe."""
        scenario = PagScenario(fanout=3)
        verdicts = check_secrecy(scenario, corrupted=("M1", "M2"))
        assert all(v.private for v in verdicts.values())

    def test_predecessor_only_coalitions_are_safe(self):
        """Predecessors know their own primes but nothing about honest
        links."""
        scenario = PagScenario(fanout=3)
        verdicts = check_secrecy(scenario, corrupted=("A1", "A2"))
        assert verdicts["A3"].private

    def test_the_successor_learns_nothing_extra(self):
        scenario = PagScenario(fanout=3)
        verdicts = check_secrecy(scenario, corrupted=("C",))
        assert all(v.private for v in verdicts.values())

    def test_receiver_corruption_exposes_everything(self):
        """B knows its own primes — corrupting the receiver is the
        theoretical-minimum case, not an attack on the protocol."""
        scenario = PagScenario(fanout=3)
        verdicts = check_secrecy(scenario, corrupted=("B",))
        assert all(not v.private for v in verdicts.values())

    def test_mixed_coalitions_follow_the_vii_e_criterion(self):
        """At f=3, one predecessor plus the *right* monitor exposes the
        remaining link — exactly the section VII-E condition ('all its
        predecessors except at most two and at least one of the
        monitors'), which is why Fig. 10's PAG curve sits above the
        theoretical minimum."""
        broken = 0
        for coalition, verdicts in case2_coalitions(fanout=3):
            preds = [r for r in coalition if r.startswith("A")]
            monitors = [r for r in coalition if r.startswith("M")]
            exposed = [
                p
                for p, v in verdicts.items()
                if p not in coalition and not v.private
            ]
            if exposed:
                broken += 1
                # Every break involves a mixed coalition.
                assert preds and monitors, coalition
        assert broken > 0

    def test_pure_coalitions_never_break(self):
        for coalition, verdicts in case2_coalitions(fanout=3):
            kinds = {role[0] for role in coalition}
            if len(kinds) == 1:  # all-A or all-M
                for pred, v in verdicts.items():
                    if pred not in coalition:
                        assert v.private, (coalition, pred)


class TestThresholdAttack:
    def test_f_coalition_recovers_the_prime(self):
        coalition, victim = f_coalition_attack(fanout=3)
        assert len(coalition) == 3
        assert victim.prime_derivable
        assert victim.update_linkable

    @pytest.mark.parametrize("fanout", [3, 4, 5])
    def test_attack_exists_at_every_fanout(self, fanout):
        coalition, victim = f_coalition_attack(fanout=fanout)
        assert victim.prime_derivable

    def test_higher_fanout_defeats_small_mixed_coalitions(self):
        """'Increasing the value of f reinforces the security': the
        pred+monitor pair that breaks f=3 is harmless at f=5."""
        scenario = PagScenario(fanout=5)
        for monitor in scenario.monitors:
            verdicts = check_secrecy(scenario, corrupted=("A1", monitor))
            for pred, v in verdicts.items():
                if pred != "A1":
                    assert v.private, (monitor, pred)

    def test_attack_needs_the_cofactor_owner(self):
        """All predecessors but the victim, *without* any monitor: no
        cofactor, no attack."""
        scenario = PagScenario(fanout=3)
        verdicts = check_secrecy(scenario, corrupted=("A2", "A3"))
        assert verdicts["A1"].private


class TestScenarioModel:
    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            PagScenario(fanout=2)

    def test_wire_messages_cover_all_stages(self):
        msgs = PagScenario(fanout=3).wire_messages()
        # 8 messages per predecessor + 2 for the successor leg.
        assert len(msgs) == 3 * 8 + 2

    def test_role_knowledge_validation(self):
        scenario = PagScenario(fanout=3)
        with pytest.raises(ValueError):
            scenario.role_private_knowledge("nobody")

    def test_designated_monitors_distinct_per_predecessor(self):
        scenario = PagScenario(fanout=3)
        monitors = {
            scenario.designated_monitor(i) for i in range(1, 4)
        }
        assert len(monitors) == 3
