"""Exhaustive coalition sweep at f = 4 (slow).

Section VI-A tests "several configurations ... that were all tested";
here every coalition of up to 3 nodes among the 8 predecessor/monitor
roles of the f = 4 scenario is checked: the privacy boundary must be
exactly the section VII-E criterion at every size.
"""

from itertools import combinations

import pytest

from repro.verifier.protocol import PagScenario
from repro.verifier.scenarios import check_secrecy


@pytest.mark.slow
def test_all_small_coalitions_at_f4():
    scenario = PagScenario(fanout=4)
    pool = scenario.predecessors + scenario.monitors
    for size in (1, 2):
        for coalition in combinations(pool, size):
            verdicts = check_secrecy(scenario, corrupted=coalition)
            for pred, verdict in verdicts.items():
                if pred in coalition:
                    continue
                # At f=4 no coalition of size <= 2 may break privacy:
                # a cofactor has 3 primes, so one colluding
                # predecessor's prime cannot reduce it to a singleton.
                assert verdict.private, (coalition, pred)


@pytest.mark.slow
def test_breaking_coalitions_at_f4_are_always_mixed():
    """Size-3 coalitions break in two structural ways, both mixed:

    * the §VII-E pattern — two colluding predecessors' primes reduce a
      corrupted monitor's cofactor to the victim's prime;
    * a *chained-division* pattern the deduction engine surfaced beyond
      the paper's enumeration: two corrupted monitors holding different
      cofactors plus one predecessor (e.g. cofactor_2 ÷ p1 = p3*p4,
      then cofactor_1 ÷ (p3*p4) = p2).

    The invariant that holds universally: every breaking coalition
    mixes at least one monitor with at least one predecessor —
    predecessor-only and monitor-only coalitions never break, which is
    the composition claim of §VI-A.
    """
    scenario = PagScenario(fanout=4)
    pool = scenario.predecessors + scenario.monitors
    breaking = []
    chained = []
    for coalition in combinations(pool, 3):
        verdicts = check_secrecy(scenario, corrupted=coalition)
        exposed = [
            p
            for p, v in verdicts.items()
            if p not in coalition and not v.private
        ]
        if exposed:
            breaking.append((coalition, exposed))
            preds = [r for r in coalition if r.startswith("A")]
            monitors = [r for r in coalition if r.startswith("M")]
            assert preds and monitors, coalition
            if len(monitors) >= 2:
                chained.append(coalition)
    assert breaking, "the threshold attack must exist at size 3"
    assert chained, "the chained-division attack pattern must appear"
