"""``fold_wire_pairs``: the monitor-side fold of a batched wire relay.

The fm>1 acceptance property: folding an ``AttestationRelayBatch``'s
raw (hash, cofactor) pairs in one multi-exponentiation pass must be
bit-identical to the sequential ``lift_attested``/``combine_lifted``
chain the per-pair path runs — same product, same modulus, for both
the RelayPair object form and the bare-triple form.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import RelayPair, SignedAttestation
from repro.core.verification import (
    combine_lifted,
    fold_wire_pairs,
    lift_attested,
)
from repro.crypto import HomomorphicHasher

# A composite (RSA-style) test modulus, wide enough for real folds.
MODULUS = (2**61 - 1) * (2**31 - 1)


def _hasher() -> HomomorphicHasher:
    return HomomorphicHasher(modulus=MODULUS)


def _sequential(hasher, triples) -> int:
    lifted = [
        lift_attested(hasher, forward, cofactor)
        for forward, _ack_only, cofactor in triples
        if forward != 1 % hasher.modulus
    ]
    return combine_lifted(hasher, lifted)


triples_st = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=MODULUS - 1),  # hash_forward
        st.integers(min_value=0, max_value=MODULUS - 1),  # hash_ack_only
        st.integers(min_value=1, max_value=(1 << 64) - 1),  # cofactor
    ),
    min_size=1,
    max_size=8,
)


@settings(max_examples=60, deadline=None)
@given(triples=triples_st)
def test_fold_matches_sequential_lift_chain(triples):
    assert fold_wire_pairs(_hasher(), triples) == _sequential(
        _hasher(), triples
    )


@settings(max_examples=40, deadline=None)
@given(triples=triples_st)
def test_relay_pair_form_matches_triple_form(triples):
    pairs = tuple(
        RelayPair(
            attestation=SignedAttestation(
                round_no=4,
                server=i,
                receiver=9,
                hash_forward=forward,
                hash_ack_only=ack_only,
                signature=1,
            ),
            cofactor=cofactor,
            cofactor_prime_count=1,
        )
        for i, (forward, ack_only, cofactor) in enumerate(triples)
    )
    assert fold_wire_pairs(_hasher(), pairs) == fold_wire_pairs(
        _hasher(), triples
    )


def test_ack_only_hashes_are_tallied_but_folded_out():
    """The ack-only half of each pair costs an operation (the monitor
    does evaluate it) but does not enter the obligation product."""
    triples = [(7, 11, 3), (13, 17, 5)]
    with_ack = _hasher()
    fold_wire_pairs(with_ack, triples)
    stripped = _hasher()
    folded = fold_wire_pairs(
        stripped, [(f, 1 % MODULUS, c) for f, _a, c in triples]
    )
    assert folded == _sequential(_hasher(), triples)
    assert with_ack.operations > stripped.operations


def test_neutral_bases_contribute_nothing():
    neutral = 1 % MODULUS
    hasher = _hasher()
    assert fold_wire_pairs(hasher, [(neutral, neutral, 99)]) == neutral
    assert hasher.operations == 0
