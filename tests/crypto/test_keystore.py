"""Tests for the key directory and crypto counters."""

import random

import pytest

from repro.crypto.keystore import (
    CryptoCounters,
    KeyStore,
    check_signed_blob,
    signed_blob,
)


@pytest.fixture()
def store():
    return KeyStore(key_bits=384, rng=random.Random(5))


class TestKeyStore:
    def test_register_is_idempotent(self, store):
        first = store.register(7)
        second = store.register(7)
        assert first is second
        assert len(store) == 1

    def test_public_key_registers_on_demand(self, store):
        key = store.public_key(3)
        assert 3 in store
        assert key == store.register(3).public

    def test_key_pair_requires_registration(self, store):
        with pytest.raises(KeyError):
            store.key_pair(99)
        store.register(99)
        assert store.key_pair(99).public.modulus > 0

    def test_distinct_nodes_distinct_keys(self, store):
        assert store.public_key(1) != store.public_key(2)

    def test_known_nodes_sorted(self, store):
        store.register(5)
        store.register(2)
        assert store.known_nodes() == [2, 5]

    def test_deterministic_under_seed(self):
        a = KeyStore(key_bits=256, rng=random.Random(1))
        b = KeyStore(key_bits=256, rng=random.Random(1))
        assert a.public_key(1) == b.public_key(1)


class TestSignedBlobs:
    def test_roundtrip_and_counting(self, store):
        counters = CryptoCounters()
        payload, signature = signed_blob(store, 4, b"hello", counters)
        assert payload == b"hello"
        assert counters.signatures == 1
        assert check_signed_blob(store, 4, payload, signature, counters)
        assert counters.verifications == 1

    def test_rejects_wrong_signer(self, store):
        _, signature = signed_blob(store, 4, b"hello")
        assert not check_signed_blob(store, 5, b"hello", signature)


class TestCryptoCounters:
    def test_snapshot_and_reset(self):
        counters = CryptoCounters(signatures=3, homomorphic_hashes=7)
        snap = counters.snapshot()
        assert snap["signatures"] == 3
        assert snap["homomorphic_hashes"] == 7
        counters.reset()
        assert counters.snapshot()["signatures"] == 0

    def test_add_accumulates(self):
        a = CryptoCounters(signatures=1, encryptions=2)
        b = CryptoCounters(signatures=4, decryptions=5)
        a.add(b)
        assert a.signatures == 5
        assert a.encryptions == 2
        assert a.decryptions == 5


class TestDefaultRngIsSeeded:
    """Regression: the default rng used to be an unseeded
    ``random.Random()`` (caught by ``repro lint`` DET102), silently
    breaking the documented two-runs-same-keys contract."""

    def test_two_default_stores_generate_identical_keys(self):
        a = KeyStore(key_bits=256)
        b = KeyStore(key_bits=256)
        assert a.register(1).public == b.register(1).public

    def test_default_matches_explicit_seed(self):
        from repro.crypto.keystore import DEFAULT_KEYSTORE_SEED

        implicit = KeyStore(key_bits=256)
        explicit = KeyStore(
            key_bits=256, rng=random.Random(DEFAULT_KEYSTORE_SEED)
        )
        assert implicit.register(9).public == explicit.register(9).public
