"""The batched multi-exponentiation primitive and the shared ladders.

``multi_powmod`` is the arithmetic core of batched monitor verification:
its only contract is bit-identity with the naive per-pair fold
``prod pow(b_i, e_i, m) mod m`` for *every* input, which Hypothesis
checks across degenerate batches (empty, single pair, zero exponents,
modulus 1) and both backends.  ``SharedLadderTable`` must hand out
levels that any number of adopters can extend without observing each
other.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.backend import (
    FixedBaseCache,
    Gmpy2Backend,
    PythonBackend,
    SharedLadderTable,
    gmpy2_available,
    multi_powmod,
)
from repro.crypto.homomorphic import HomomorphicHasher, make_modulus


def _backends():
    backends = [PythonBackend()]
    if gmpy2_available():
        backends.append(Gmpy2Backend())
    return backends


def _all_backend_params():
    return [pytest.param(b, id=b.name) for b in _backends()]


def _naive_fold(pairs, modulus):
    acc = 1 % modulus
    for base, exponent in pairs:
        acc = acc * pow(base, exponent, modulus) % modulus
    return acc


# ---------------------------------------------------------------------------
# multi_powmod == naive per-pair fold, always
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", _all_backend_params())
@given(
    pairs=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1 << 1024),
            st.integers(min_value=0, max_value=1 << 512),
        ),
        max_size=6,
    ),
    modulus=st.integers(min_value=1, max_value=1 << 512),
)
@settings(max_examples=80, deadline=None)
def test_multi_powmod_matches_per_pair_fold(backend, pairs, modulus):
    assert backend.multi_powmod(pairs, modulus) == _naive_fold(
        pairs, modulus
    )


@pytest.mark.parametrize("backend", _all_backend_params())
def test_multi_powmod_degenerate_batches(backend):
    assert backend.multi_powmod([], 97) == 1
    assert backend.multi_powmod([], 1) == 0  # identity mod 1
    assert backend.multi_powmod([(5, 13)], 97) == pow(5, 13, 97)
    # Zero exponents contribute the identity, like pow(b, 0, m).
    assert backend.multi_powmod([(5, 0), (7, 0)], 97) == 1
    assert backend.multi_powmod([(5, 0), (7, 3)], 97) == pow(7, 3, 97)
    # Zero bases annihilate once their exponent is positive.
    assert backend.multi_powmod([(0, 2), (7, 3)], 97) == 0


@pytest.mark.parametrize("backend", _all_backend_params())
def test_multi_powmod_rejects_bad_input(backend):
    with pytest.raises(ValueError):
        backend.multi_powmod([(2, -1)], 97)
    with pytest.raises(ValueError):
        backend.multi_powmod([(2, 3)], 0)
    with pytest.raises(ValueError):
        backend.multi_powmod([(2, 3)], -5)


def test_module_level_wrapper_uses_default_backend():
    pairs = [(12345, 678), (999, 1)]
    assert multi_powmod(pairs, 1009) == _naive_fold(pairs, 1009)


def test_monitor_shaped_batch_exact():
    """The actual obligation-fold shape: k attested hashes, each raised
    to the product of the *other* primes, multiplying to the full-key
    hash of the combined product."""
    rng = random.Random(42)
    modulus = make_modulus(256, rng)
    primes = [101, 257, 65537, 4294967311]
    full_key = 1
    for p in primes:
        full_key *= p
    updates = [rng.getrandbits(300) | 1 for _ in primes]
    pairs = [
        (pow(u, p, modulus), full_key // p)
        for u, p in zip(updates, primes)
    ]
    product = 1
    for u in updates:
        product = product * u % modulus
    for backend in _backends():
        assert backend.multi_powmod(pairs, modulus) == pow(
            product, full_key, modulus
        )


# ---------------------------------------------------------------------------
# SharedLadderTable
# ---------------------------------------------------------------------------


def test_shared_table_adoption_matches_pow():
    rng = random.Random(5)
    modulus = make_modulus(128, rng)
    bases = [rng.getrandbits(1024) | 1 for _ in range(4)]
    table = SharedLadderTable.build(
        bases, modulus, window=4, capacity_bits=32
    )
    assert len(table) == 4
    for base in bases:
        assert base in table
        cache = FixedBaseCache.from_shared(
            base, modulus, table.window, *table.get(base)
        )
        for exponent in (0, 1, 5, (1 << 31) + 7, (1 << 200) + 3):
            assert cache.powmod(exponent) == pow(base, exponent, modulus)
    assert table.get(123456789) is None


def test_shared_levels_are_isolated_across_adopters():
    """Two caches adopting the same entry grow independently: appending
    levels locally must never leak into the shared tuples or the other
    adopter (the fork/thread-sharing safety property)."""
    rng = random.Random(6)
    modulus = make_modulus(96, rng)
    base = rng.getrandbits(512) | 1
    table = SharedLadderTable.build(
        [base], modulus, window=4, capacity_bits=16
    )
    levels, tops = table.get(base)
    shared_depth = len(levels)
    one = FixedBaseCache.from_shared(base, modulus, 4, levels, tops)
    two = FixedBaseCache.from_shared(base, modulus, 4, levels, tops)
    wide = (1 << 100) + 17
    assert one.powmod(wide) == pow(base, wide, modulus)
    # one grew locally; the shared entry and the sibling did not.
    assert len(table.get(base)[0]) == shared_depth
    assert len(two._levels) == shared_depth
    assert two.powmod(wide) == pow(base, wide, modulus)


def test_shared_table_rejects_degenerate_parameters():
    with pytest.raises(ValueError):
        SharedLadderTable(1, 4, {})
    with pytest.raises(ValueError):
        SharedLadderTable(91, 0, {})


def test_hasher_adoption_values_and_accounting():
    rng = random.Random(7)
    modulus = make_modulus(128, rng)
    bases = [rng.getrandbits(1024) | 1 for _ in range(6)]
    table = SharedLadderTable.build(
        bases, modulus, window=4, capacity_bits=32
    )
    adopted = HomomorphicHasher(modulus=modulus)
    adopted.adopt_shared_ladders(table)
    plain = HomomorphicHasher(modulus=modulus)
    for base in bases:
        for exponent in (65537, 101, (1 << 90) + 1):
            assert adopted.hash(base, exponent) == plain.hash(
                base, exponent
            )
    # Same protocol-level tallies; the shared table only changes *how*.
    assert adopted.operations == plain.operations
    stats = adopted.cache_stats()
    assert stats["shared_ladder_seeds"] == len(bases)
    assert stats["shared_ladder_bases"] == len(bases)
    # Every call still lands in exactly one accounting bucket.
    assert adopted.operations == (
        adopted.memo_hits
        + adopted.fixed_base_hits
        + adopted.cold_powmods
        + adopted.batched_lifts
    )


def test_hasher_rejects_foreign_modulus_table():
    rng = random.Random(8)
    hasher = HomomorphicHasher(modulus=make_modulus(128, rng))
    table = SharedLadderTable.build([3], make_modulus(128, rng), window=4)
    with pytest.raises(ValueError, match="different modulus"):
        hasher.adopt_shared_ladders(table)
    hasher.adopt_shared_ladders(None)  # explicit no-op
