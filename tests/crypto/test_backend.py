"""Backend parity: every arithmetic backend computes the same algebra.

The fast path (gmpy2, fixed-base tables, memoisation) must be invisible:
hash values, the homomorphic identities and the Table I operation
counts have to be identical whichever backend computes them.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.backend import (
    FixedBaseCache,
    Gmpy2Backend,
    PythonBackend,
    available_backends,
    default_backend,
    gmpy2_available,
    resolve_backend,
)
from repro.crypto.homomorphic import HomomorphicHasher, make_modulus

needs_gmpy2 = pytest.mark.skipif(
    not gmpy2_available(), reason="gmpy2 not installed"
)


def _backends():
    backends = [PythonBackend()]
    if gmpy2_available():
        backends.append(Gmpy2Backend())
    return backends


def _all_backend_params():
    return [pytest.param(b, id=b.name) for b in _backends()]


# ---------------------------------------------------------------------------
# Selection
# ---------------------------------------------------------------------------


def test_python_backend_always_available():
    assert "python" in available_backends()
    assert resolve_backend("python").name == "python"


def test_auto_resolution_matches_availability():
    backend = resolve_backend("auto")
    assert backend.name == ("gmpy2" if gmpy2_available() else "python")


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        resolve_backend("openssl")


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_CRYPTO_BACKEND", "python")
    assert resolve_backend(None).name == "python"


def test_missing_gmpy2_fails_loudly():
    if gmpy2_available():
        assert resolve_backend("gmpy2").name == "gmpy2"
    else:
        with pytest.raises(RuntimeError):
            resolve_backend("gmpy2")


def test_default_backend_is_cached():
    assert default_backend() is default_backend()


# ---------------------------------------------------------------------------
# Arithmetic parity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", _all_backend_params())
@given(
    base=st.integers(min_value=0, max_value=1 << 1024),
    exponent=st.integers(min_value=0, max_value=1 << 512),
    modulus=st.integers(min_value=2, max_value=1 << 512),
)
@settings(max_examples=60, deadline=None)
def test_powmod_matches_builtin_pow(backend, base, exponent, modulus):
    assert backend.powmod(base, exponent, modulus) == pow(
        base, exponent, modulus
    )


@pytest.mark.parametrize("backend", _all_backend_params())
def test_mulmod_matches_builtin(backend):
    rng = random.Random(5)
    for _ in range(50):
        a, b = rng.getrandbits(256), rng.getrandbits(256)
        m = rng.randrange(2, 1 << 128)
        assert backend.mulmod(a, b, m) == a * b % m


@needs_gmpy2
def test_gmpy2_returns_plain_ints():
    backend = Gmpy2Backend()
    result = backend.powmod(3, 4, 7)
    assert type(result) is int and result == 4


# ---------------------------------------------------------------------------
# Protocol-level parity: hash / rekey / combine / verify_forwarding and
# identical operation accounting across backends.
# ---------------------------------------------------------------------------


def _fresh_pair():
    """Two hashers over the same modulus, one per available backend."""
    modulus = make_modulus(256, random.Random(11))
    return [
        HomomorphicHasher(modulus=modulus, backend=b) for b in _backends()
    ]


def _exercise(hasher, rng):
    """A fixed workload touching every hashing entry point."""
    outputs = []
    primes = [65537, 101, 257]
    for i in range(40):
        update = rng.getrandbits(300) + 2
        outputs.append(hasher.hash(update, primes[i % 3]))
        # Repeat some hashes so the memo path is exercised too.
        outputs.append(hasher.hash(update, primes[i % 3]))
    attested = []
    for _i in range(10):
        h = hasher.hash(rng.getrandbits(200) + 2, 65537)
        cofactor = rng.getrandbits(96) | 1
        # Lift twice: the second lift goes through the fixed-base table.
        attested.append(hasher.rekey(h, cofactor))
        attested.append(hasher.rekey(h, cofactor + 2))
    outputs.extend(attested)
    outputs.append(hasher.combine(attested))
    u1, u2 = rng.getrandbits(128) + 2, rng.getrandbits(128) + 2
    p1, p2 = 101, 257
    pairs = [
        (hasher.hash(u1, p1), p2),
        (hasher.hash(u2, p2), p1),
    ]
    acknowledged = hasher.hash(u1, p1 * p2) * hasher.hash(u2, p1 * p2)
    outputs.append(hasher.verify_forwarding(pairs, acknowledged))
    return outputs


def test_backends_agree_on_all_operations_and_counts():
    hashers = _fresh_pair()
    results = []
    for hasher in hashers:
        results.append((_exercise(hasher, random.Random(77)), hasher))
    reference_out, reference_hasher = results[0]
    for outputs, hasher in results[1:]:
        assert outputs == reference_out
        assert hasher.operations == reference_hasher.operations
    if len(results) == 1:
        pytest.skip("only the python backend installed; parity is vacuous")


@pytest.mark.parametrize("backend", _all_backend_params())
def test_operation_count_is_call_based_not_compute_based(backend):
    """Memo hits still count: Table I tallies protocol-level hashes."""
    hasher = HomomorphicHasher(
        modulus=make_modulus(128, random.Random(2)), backend=backend
    )
    wide_exponent = (1 << 100) + 1  # wide exponents take the memo path
    hasher.hash(12345, wide_exponent)
    hasher.hash(12345, wide_exponent)
    hasher.hash(12345, wide_exponent)
    assert hasher.operations == 3


@pytest.mark.parametrize("backend", _all_backend_params())
def test_verify_forwarding_parity_with_seed_semantics(backend):
    """The forwarding equation holds and fails exactly as in the seed."""
    hasher = HomomorphicHasher(
        modulus=make_modulus(256, random.Random(4)), backend=backend
    )
    rng = random.Random(9)
    updates = [rng.getrandbits(120) + 2 for _ in range(3)]
    primes = [101, 257, 65537]
    full_key = primes[0] * primes[1] * primes[2]
    attested = []
    for u, p in zip(updates, primes):
        cofactor = full_key // p
        attested.append((hasher.hash(u, p), cofactor))
    acknowledged = hasher.hash(
        updates[0] * updates[1] * updates[2], full_key
    )
    assert hasher.verify_forwarding(attested, acknowledged)
    assert not hasher.verify_forwarding(attested, acknowledged + 1)


# ---------------------------------------------------------------------------
# Fixed-base cache
# ---------------------------------------------------------------------------


@given(
    base=st.integers(min_value=0, max_value=1 << 600),
    modulus=st.integers(min_value=2, max_value=1 << 512),
    window=st.integers(min_value=1, max_value=6),
    exponents=st.lists(
        st.integers(min_value=0, max_value=1 << 520),
        min_size=1,
        max_size=8,
    ),
)
@settings(max_examples=60, deadline=None)
def test_fixed_base_cache_matches_pow(base, modulus, window, exponents):
    cache = FixedBaseCache(base, modulus, window=window)
    for exponent in exponents:
        assert cache.powmod(exponent) == pow(base, exponent, modulus)


def test_fixed_base_cache_rejects_bad_parameters():
    with pytest.raises(ValueError):
        FixedBaseCache(2, 1)
    with pytest.raises(ValueError):
        FixedBaseCache(2, 5, window=0)
    with pytest.raises(ValueError):
        FixedBaseCache(2, 5).powmod(-1)


def test_fixed_base_cache_table_grows_lazily():
    cache = FixedBaseCache(3, 1 << 61, window=4)
    cache.powmod(15)
    small_levels = len(cache._levels)
    cache.powmod(1 << 300)
    assert len(cache._levels) > small_levels
