"""Unit tests for the pure-Python RSA implementation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rsa import RsaPublicKey, generate_keypair


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(bits=512, rng=random.Random(1))


def test_keypair_modulus_size(keypair):
    assert 500 <= keypair.bits <= 512


def test_keypair_is_deterministic_under_seed():
    a = generate_keypair(bits=256, rng=random.Random(99))
    b = generate_keypair(bits=256, rng=random.Random(99))
    assert a.public == b.public


def test_encrypt_decrypt_roundtrip(keypair):
    plaintext = b"prime p_j for round R"
    ciphertext = keypair.public.encrypt(plaintext)
    assert keypair.private.decrypt(ciphertext) == plaintext


def test_encrypt_produces_distinct_ciphertext_for_distinct_messages(keypair):
    c1 = keypair.public.encrypt(b"update-1")
    c2 = keypair.public.encrypt(b"update-2")
    assert c1 != c2


def test_encrypt_rejects_oversized_plaintext(keypair):
    with pytest.raises(ValueError):
        keypair.public.encrypt(b"x" * 100)  # > 512-bit modulus capacity


def test_raw_encrypt_rejects_out_of_range(keypair):
    with pytest.raises(ValueError):
        keypair.public.encrypt_int(keypair.public.modulus)
    with pytest.raises(ValueError):
        keypair.public.encrypt_int(-1)


def test_decrypt_garbage_raises(keypair):
    # An unrelated ciphertext decrypts to bytes without the domain tag.
    with pytest.raises(ValueError):
        keypair.private.decrypt(1234567890123456789)


def test_sign_verify_roundtrip(keypair):
    message = b"Ack, R, B, A, H(...)"
    signature = keypair.private.sign(message)
    assert keypair.public.verify(message, signature)


def test_verify_rejects_tampered_message(keypair):
    signature = keypair.private.sign(b"original")
    assert not keypair.public.verify(b"tampered", signature)


def test_verify_rejects_tampered_signature(keypair):
    signature = keypair.private.sign(b"original")
    assert not keypair.public.verify(b"original", signature ^ 1)


def test_verify_rejects_out_of_range_signature(keypair):
    assert not keypair.public.verify(b"m", keypair.public.modulus + 5)
    assert not keypair.public.verify(b"m", -3)


def test_signature_by_other_key_rejected(keypair):
    other = generate_keypair(bits=512, rng=random.Random(2))
    signature = other.private.sign(b"message")
    assert not keypair.public.verify(b"message", signature)


def test_generate_keypair_validates_arguments():
    with pytest.raises(ValueError):
        generate_keypair(bits=32)
    with pytest.raises(ValueError):
        generate_keypair(bits=128, public_exponent=4)
    with pytest.raises(ValueError):
        generate_keypair(bits=128, public_exponent=1)


def test_public_key_byte_size():
    key = RsaPublicKey(modulus=(1 << 255) + 1, exponent=3)
    assert key.byte_size == 32


@given(st.binary(min_size=0, max_size=24))
@settings(max_examples=50, deadline=None)
def test_roundtrip_property(payload):
    pair = generate_keypair(bits=384, rng=random.Random(7))
    assert pair.private.decrypt(pair.public.encrypt(payload)) == payload


@given(st.binary(min_size=1, max_size=40))
@settings(max_examples=50, deadline=None)
def test_sign_verify_property(message):
    pair = generate_keypair(bits=384, rng=random.Random(8))
    assert pair.public.verify(message, pair.private.sign(message))
    assert not pair.public.verify(message + b"!", pair.private.sign(message))


def test_default_rng_fallback_is_deterministic():
    """Regression: omitting ``rng`` used to consume ambient entropy
    (caught by ``repro lint`` DET102); now two parameter-identical
    calls must agree."""
    a = generate_keypair(bits=256)
    b = generate_keypair(bits=256)
    assert a.public == b.public
    assert a.private == b.private
    # ... and a different parameter set derives a different stream.
    c = generate_keypair(bits=320)
    assert c.public != a.public
