"""Tests for the homomorphic hash: the exact identities of section IV-B."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.homomorphic import (
    HomomorphicHasher,
    fresh_hasher,
    make_modulus,
)
from repro.crypto.primes import generate_distinct_primes, product


@pytest.fixture(scope="module")
def hasher():
    return fresh_hasher(bits=256, seed=11)


updates_strategy = st.lists(
    st.integers(min_value=2, max_value=2**128), min_size=1, max_size=5
)


def test_make_modulus_size():
    m = make_modulus(256, random.Random(3))
    assert 250 <= m.bit_length() <= 256


def test_modulus_must_be_composite():
    with pytest.raises(ValueError):
        HomomorphicHasher(modulus=101)  # prime
    with pytest.raises(ValueError):
        HomomorphicHasher(modulus=2)


def test_hash_is_deterministic(hasher):
    assert hasher.hash(123456, 65537) == hasher.hash(123456, 65537)


def test_hash_rejects_nonpositive_exponent(hasher):
    with pytest.raises(ValueError):
        hasher.hash(5, 0)
    with pytest.raises(ValueError):
        hasher.hash(5, -7)


def test_product_property(hasher):
    """H(u1) * H(u2) == H(u1 * u2) under the same exponent."""
    u1, u2, p = 0xDEADBEEF, 0xCAFEBABE, 65537
    lhs = (hasher.hash(u1, p) * hasher.hash(u2, p)) % hasher.modulus
    rhs = hasher.hash(u1 * u2, p)
    assert lhs == rhs


def test_rekey_property(hasher):
    """H(H(u)_(p1))_(p2) == H(u)_(p1*p2)."""
    u, p1, p2 = 0x1234567890, 101, 257
    assert hasher.rekey(hasher.hash(u, p1), p2) == hasher.hash(u, p1 * p2)


def test_hash_set_equals_hash_of_product(hasher):
    updates = [11, 22, 33, 44]
    p = 65537
    prod = 1
    for u in updates:
        prod *= u
    assert hasher.hash_set(updates, p) == hasher.hash(prod, p)


def test_hash_set_empty_is_identity(hasher):
    assert hasher.hash_set([], 65537) == 1


def test_combine_is_modular_product(hasher):
    values = [hasher.hash(u, 13) for u in (5, 7, 9)]
    expected = 1
    for v in values:
        expected = (expected * v) % hasher.modulus
    assert hasher.combine(values) == expected


def test_combine_empty(hasher):
    assert hasher.combine([]) == 1


def test_operation_counter(hasher):
    hasher.reset_counter()
    hasher.hash(5, 3)
    hasher.hash_set([2, 3], 5)
    hasher.rekey(7, 11)
    assert hasher.reset_counter() == 3
    assert hasher.operations == 0


def test_byte_size(hasher):
    assert hasher.byte_size == (hasher.modulus.bit_length() + 7) // 8


class TestForwardingEquation:
    """End-to-end check of the monitors' verification (Fig. 4 / section V-B).

    Node B receives S_1 from A (hashed under p_1) and S_2 from F (under
    p_2), forwards everything to D, and D acknowledges under p_1 * p_2.
    B's monitors must accept; any tampering must be rejected.
    """

    def setup_method(self):
        self.hasher = fresh_hasher(bits=256, seed=21)
        rng = random.Random(99)
        self.p1, self.p2, self.p3 = generate_distinct_primes(3, 64, rng)
        self.s1 = [1001, 1003]  # updates from predecessor A
        self.s2 = [2001]  # updates from predecessor F
        self.s3 = [3001, 3003]  # updates from predecessor G

    def _attested(self, sets_and_primes):
        all_primes = [p for _, p in sets_and_primes]
        attested = []
        for updates, p in sets_and_primes:
            cofactor = product(q for q in all_primes if q != p)
            attested.append((self.hasher.hash_set(updates, p), cofactor))
        return attested, product(all_primes)

    def test_honest_forwarding_accepted(self):
        attested, key = self._attested(
            [(self.s1, self.p1), (self.s2, self.p2)]
        )
        ack = self.hasher.hash_set(self.s1 + self.s2, key)
        assert self.hasher.verify_forwarding(attested, ack)

    def test_three_predecessors_accepted(self):
        attested, key = self._attested(
            [(self.s1, self.p1), (self.s2, self.p2), (self.s3, self.p3)]
        )
        ack = self.hasher.hash_set(self.s1 + self.s2 + self.s3, key)
        assert self.hasher.verify_forwarding(attested, ack)

    def test_dropped_update_rejected(self):
        attested, key = self._attested(
            [(self.s1, self.p1), (self.s2, self.p2)]
        )
        # B selfishly forwards only s1 — the ack no longer matches.
        ack = self.hasher.hash_set(self.s1, key)
        assert not self.hasher.verify_forwarding(attested, ack)

    def test_substituted_update_rejected(self):
        attested, key = self._attested(
            [(self.s1, self.p1), (self.s2, self.p2)]
        )
        forged = self.s1 + [9999]  # replace F's update with junk
        ack = self.hasher.hash_set(forged, key)
        assert not self.hasher.verify_forwarding(attested, ack)

    def test_wrong_key_rejected(self):
        attested, _ = self._attested([(self.s1, self.p1), (self.s2, self.p2)])
        ack = self.hasher.hash_set(self.s1 + self.s2, self.p1 * self.p3)
        assert not self.hasher.verify_forwarding(attested, ack)


@given(updates_strategy, updates_strategy, st.data())
@settings(max_examples=40, deadline=None)
def test_forwarding_equation_property(set_a, set_f, data):
    """The verification equation holds for arbitrary update sets."""
    hasher = fresh_hasher(bits=128, seed=5)
    rng = random.Random(data.draw(st.integers(0, 2**32)))
    p_a, p_f = generate_distinct_primes(2, 32, rng)
    attested = [
        (hasher.hash_set(set_a, p_a), p_f),
        (hasher.hash_set(set_f, p_f), p_a),
    ]
    ack = hasher.hash_set(set_a + set_f, p_a * p_f)
    assert hasher.verify_forwarding(attested, ack)


@given(
    st.integers(min_value=2, max_value=2**256),
    st.integers(min_value=2, max_value=2**64),
    st.integers(min_value=2, max_value=2**64),
)
@settings(max_examples=100, deadline=None)
def test_rekey_property_holds_for_arbitrary_inputs(u, e1, e2):
    hasher = fresh_hasher(bits=128, seed=6)
    assert hasher.rekey(hasher.hash(u, e1), e2) == hasher.hash(u, e1 * e2)


@given(updates_strategy, st.integers(min_value=2, max_value=2**32))
@settings(max_examples=100, deadline=None)
def test_hash_set_order_independent(updates, exponent):
    """Multiplication commutes, so reception order cannot matter."""
    hasher = fresh_hasher(bits=128, seed=7)
    shuffled = list(reversed(updates))
    assert hasher.hash_set(updates, exponent) == hasher.hash_set(
        shuffled, exponent
    )


# ---------------------------------------------------------------------------
# Fast-path transparency: memoisation and fixed-base tables must be
# invisible in both values and operation counts.
# ---------------------------------------------------------------------------


@given(
    update=st.integers(min_value=0, max_value=2**512),
    exponent=st.integers(min_value=1, max_value=2**256),
    repeats=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=60, deadline=None)
def test_cached_hash_equals_builtin_pow(update, exponent, repeats):
    """Every repetition — memo hit, warm base, cold call — matches pow."""
    hasher = fresh_hasher(bits=128, seed=21)
    expected = pow(update, exponent, hasher.modulus)
    for _ in range(repeats):
        assert hasher.hash(update, exponent) == expected
    assert hasher.operations == repeats


def test_repeated_rekey_uses_consistent_values(hasher):
    """Lifting the same base many times (the monitor's message 8 loop)
    stays equal to pow even after the fixed-base table kicks in."""
    rng = random.Random(17)
    base = rng.getrandbits(200)
    for _i in range(12):
        cofactor = rng.getrandbits(96) | 1
        assert hasher.rekey(base, cofactor) == pow(
            base, cofactor, hasher.modulus
        )


def test_memo_does_not_undercount_operations():
    hasher = fresh_hasher(bits=128, seed=3)
    before = hasher.operations
    wide = (1 << 80) + 1
    for _ in range(5):
        hasher.hash(999, wide)
    assert hasher.operations - before == 5


def test_cache_bounds_are_configurable_and_respected():
    from repro.crypto.homomorphic import HomomorphicHasher, make_modulus

    rng = random.Random(5)
    hasher = HomomorphicHasher(
        modulus=make_modulus(128, rng), memo_max=4, fixed_base_max=2
    )
    wide = (1 << 80) + 1
    # Values stay correct while the memo evicts around its tiny bound.
    for base in range(2, 40):
        assert hasher.hash(base, wide) == pow(base, wide, hasher.modulus)
        assert len(hasher._memo) <= 4
        assert len(hasher._fixed_bases) <= 2


def test_cache_stats_partition_the_calls():
    hasher = fresh_hasher(bits=128, seed=9)
    rng = random.Random(31)
    wide = (1 << 80) + 1
    for _ in range(10):
        hasher.hash(rng.getrandbits(100), wide + 2 * rng.getrandbits(8))
    hasher.hash(12345, wide)
    hasher.hash(12345, wide)  # memo hit
    stats = hasher.cache_stats()
    assert (
        stats["memo_hits"] + stats["fixed_base_hits"]
        + stats["cold_powmods"]
        == hasher.operations
    )
    assert stats["memo_hits"] >= 1
    assert 0.0 <= stats["memo_hit_rate"] <= 1.0
    assert stats["memo_max"] > 0 and stats["fixed_base_max"] > 0


def test_config_cache_bounds_reach_the_session_hasher():
    from repro.core import PagConfig
    from repro.core.context import PagContext
    from repro.membership.directory import Directory

    config = PagConfig(hash_memo_entries=64, fixed_base_cache_entries=8)
    context = PagContext.build(config, Directory.of_size(6, source_id=0))
    assert context.hasher.memo_max == 64
    assert context.hasher.fixed_base_max == 8
    with pytest.raises(ValueError, match="memo"):
        PagConfig(hash_memo_entries=1)
    with pytest.raises(ValueError, match="fixed-base"):
        PagConfig(fixed_base_cache_entries=0)
