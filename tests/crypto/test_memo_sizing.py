"""Regression: the wide-exponent memo earns its keep at 512 entries.

The memo caches ``(update, exponent)`` hash results, but reuse is
drain-local — within one exchange the server and the receiver hash the
same entries under the same per-exchange prime, and the next exchange
draws a fresh prime, so old entries never hit again.  A 16384-entry
default was therefore almost entirely dead weight: measured hit counts
on full sessions are identical at 512 and 16384 entries.  These tests
pin that measurement (so a workload shift that would benefit from a
bigger memo shows up as a failure here, with data) and pin the shipped
defaults to the small size.
"""

from repro.core.config import PagConfig
from repro.crypto.homomorphic import _MEMO_MAX, HomomorphicHasher
from repro.scenarios import get_scenario


def _memo_stats(name, entries, **overrides):
    """Run a scenario with a given memo bound; return its cache stats."""
    spec = get_scenario(name).with_overrides(**overrides)
    session = spec.build_pag_with(hash_memo_entries=entries)
    session.run(spec.rounds)
    hasher = session.context.hasher
    stats = hasher.cache_stats()
    stats["operations"] = hasher.operations
    return stats


def test_memo_hits_identical_at_512_and_16384_entries():
    # Two session scales (the fig7 60-node and table1 40-node shapes,
    # shrunk to smoke size but with enough rounds for memo churn).
    for name, overrides in [
        ("fig7", dict(nodes=20, rounds=8, warmup_rounds=2)),
        ("table1", dict(nodes=12, rounds=8, warmup_rounds=2)),
    ]:
        small = _memo_stats(name, 1 << 9, **overrides)
        large = _memo_stats(name, 1 << 14, **overrides)
        # Identical hasher traffic under both bounds...
        assert small["operations"] == large["operations"]
        # ...and identical reuse: the extra 15872 entries buy nothing.
        assert small["memo_hits"] == large["memo_hits"]
        # The memo is not dead — it does hit within exchanges.
        assert small["memo_hits"] > 0


def test_default_memo_size_is_small():
    assert _MEMO_MAX == 1 << 9
    assert HomomorphicHasher(modulus=3233).memo_max == 1 << 9
    assert PagConfig().hash_memo_entries == 1 << 9


def test_memo_entry_count_respects_the_bound():
    stats = _memo_stats("fig7", 1 << 9, nodes=20, rounds=8,
                        warmup_rounds=2)
    assert stats["memo_max"] == 1 << 9
    assert stats["memo_entries"] <= 1 << 9
