"""Unit and property tests for prime generation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.primes import (
    SMALL_PRIMES,
    PrimePool,
    generate_distinct_primes,
    generate_prime,
    is_prime,
    next_prime,
    product,
)

KNOWN_PRIMES = [2, 3, 5, 7, 11, 101, 7919, 104729, 2**61 - 1]
KNOWN_COMPOSITES = [0, 1, 4, 6, 9, 100, 7917, 2**61 - 3, 561, 41041, 825265]
# 561, 41041, 825265 are Carmichael numbers: Fermat pseudoprimes to every
# coprime base, the classic trap for weak primality tests.


def test_small_prime_table_starts_correctly():
    assert SMALL_PRIMES[:10] == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]


@pytest.mark.parametrize("n", KNOWN_PRIMES)
def test_known_primes_pass(n):
    assert is_prime(n)


@pytest.mark.parametrize("n", KNOWN_COMPOSITES)
def test_known_composites_fail(n):
    assert not is_prime(n)


def test_negative_numbers_are_not_prime():
    assert not is_prime(-7)


def test_is_prime_matches_sieve_below_10000():
    sieve = bytearray([1]) * 10000
    sieve[0] = sieve[1] = 0
    for i in range(2, 100):
        if sieve[i]:
            for j in range(i * i, 10000, i):
                sieve[j] = 0
    for n in range(10000):
        assert is_prime(n) == bool(sieve[n]), n


@pytest.mark.parametrize("bits", [8, 16, 64, 128, 512])
def test_generate_prime_has_requested_bit_length(bits):
    rng = random.Random(42)
    p = generate_prime(bits, rng)
    assert p.bit_length() == bits
    assert is_prime(p)


def test_generate_prime_rejects_tiny_sizes():
    with pytest.raises(ValueError):
        generate_prime(1, random.Random(0))


def test_generate_prime_two_bits():
    rng = random.Random(7)
    assert generate_prime(2, rng) in (2, 3)


def test_generate_prime_is_deterministic_under_seed():
    a = generate_prime(128, random.Random(123))
    b = generate_prime(128, random.Random(123))
    assert a == b


def test_generate_distinct_primes_are_distinct():
    rng = random.Random(5)
    primes = generate_distinct_primes(8, 32, rng)
    assert len(primes) == 8
    assert len(set(primes)) == 8
    assert all(is_prime(p) for p in primes)


def test_next_prime():
    assert next_prime(0) == 2
    assert next_prime(2) == 3
    assert next_prime(3) == 5
    assert next_prime(13) == 17
    assert next_prime(7918) == 7919


def test_product():
    assert product([]) == 1
    assert product([7]) == 7
    assert product([2, 3, 5]) == 30


@given(st.integers(min_value=2, max_value=10**6))
@settings(max_examples=200)
def test_miller_rabin_no_false_negatives_on_products(n):
    """A product of two integers >= 2 must never be declared prime."""
    assert not is_prime(n * (n + 1))


@given(st.integers(min_value=0, max_value=2**48))
@settings(max_examples=100)
def test_next_prime_is_prime_and_greater(n):
    p = next_prime(n)
    assert p > n
    assert is_prime(p)


@given(st.data())
@settings(max_examples=20, deadline=None)
def test_generated_primes_are_coprime_pairwise(data):
    rng = random.Random(data.draw(st.integers(0, 2**32)))
    primes = generate_distinct_primes(4, 48, rng)
    import math

    for i in range(4):
        for j in range(i + 1, 4):
            assert math.gcd(primes[i], primes[j]) == 1


# ---------------------------------------------------------------------------
# PrimePool: the sieve-windowed batch generator of the round hot path.
# ---------------------------------------------------------------------------


class TestPrimePool:
    def test_pooled_primes_are_prime(self):
        pool = PrimePool(32, random.Random(123))
        for p in pool.take_many(300):
            assert is_prime(p), p

    def test_pooled_primes_are_distinct(self):
        pool = PrimePool(24, random.Random(9))
        drawn = pool.take_many(500)
        assert len(set(drawn)) == len(drawn)

    def test_reproducible_under_fixed_seed(self):
        first = PrimePool(32, random.Random(42)).take_many(100)
        second = PrimePool(32, random.Random(42)).take_many(100)
        assert first == second

    def test_different_seeds_diverge(self):
        a = PrimePool(32, random.Random(1)).take_many(20)
        b = PrimePool(32, random.Random(2)).take_many(20)
        assert a != b

    @pytest.mark.parametrize("bits", [8, 16, 32, 64, 128])
    def test_bit_length_and_top_bits(self, bits):
        """Top two bits set, like generate_prime, so products of two
        primes reach full modulus width."""
        pool = PrimePool(bits, random.Random(5))
        for p in pool.take_many(10):
            assert p.bit_length() == bits
            assert p & (1 << (bits - 2)), "second-highest bit must be set"
            assert p % 2 == 1

    def test_rejects_degenerate_sizes(self):
        with pytest.raises(ValueError):
            PrimePool(4, random.Random(0))
        with pytest.raises(ValueError):
            PrimePool(32, random.Random(0), window=0)

    def test_survivors_have_no_small_factors(self):
        """The wheel must actually strip small-prime multiples: every
        candidate that reached Miller-Rabin is coprime to the wheel."""
        pool = PrimePool(32, random.Random(3), window=64)
        pool.take_many(50)
        # Candidates tested should be well below the raw window count:
        # ~4/5 of odd numbers have a factor below 1000.
        assert 0 < pool.candidates_tested < pool.generated * 12

    def test_large_primes(self):
        pool = PrimePool(256, random.Random(77))
        p, q = pool.take_many(2)
        assert p != q
        assert is_prime(p) and is_prime(q)
        assert (p * q).bit_length() == 512

    def test_exhaustion_raises_instead_of_hanging(self):
        """Only 11 eligible 8-bit primes exist (top two bits set); the
        12th draw must fail loudly, not spin forever."""
        pool = PrimePool(8, random.Random(0))
        drawn = pool.take_many(11)
        assert len(set(drawn)) == 11
        with pytest.raises(RuntimeError, match="exhausted"):
            pool.take()
