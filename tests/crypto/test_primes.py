"""Unit and property tests for prime generation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.primes import (
    SMALL_PRIMES,
    generate_distinct_primes,
    generate_prime,
    is_prime,
    next_prime,
    product,
)

KNOWN_PRIMES = [2, 3, 5, 7, 11, 101, 7919, 104729, 2**61 - 1]
KNOWN_COMPOSITES = [0, 1, 4, 6, 9, 100, 7917, 2**61 - 3, 561, 41041, 825265]
# 561, 41041, 825265 are Carmichael numbers: Fermat pseudoprimes to every
# coprime base, the classic trap for weak primality tests.


def test_small_prime_table_starts_correctly():
    assert SMALL_PRIMES[:10] == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]


@pytest.mark.parametrize("n", KNOWN_PRIMES)
def test_known_primes_pass(n):
    assert is_prime(n)


@pytest.mark.parametrize("n", KNOWN_COMPOSITES)
def test_known_composites_fail(n):
    assert not is_prime(n)


def test_negative_numbers_are_not_prime():
    assert not is_prime(-7)


def test_is_prime_matches_sieve_below_10000():
    sieve = bytearray([1]) * 10000
    sieve[0] = sieve[1] = 0
    for i in range(2, 100):
        if sieve[i]:
            for j in range(i * i, 10000, i):
                sieve[j] = 0
    for n in range(10000):
        assert is_prime(n) == bool(sieve[n]), n


@pytest.mark.parametrize("bits", [8, 16, 64, 128, 512])
def test_generate_prime_has_requested_bit_length(bits):
    rng = random.Random(42)
    p = generate_prime(bits, rng)
    assert p.bit_length() == bits
    assert is_prime(p)


def test_generate_prime_rejects_tiny_sizes():
    with pytest.raises(ValueError):
        generate_prime(1, random.Random(0))


def test_generate_prime_two_bits():
    rng = random.Random(7)
    assert generate_prime(2, rng) in (2, 3)


def test_generate_prime_is_deterministic_under_seed():
    a = generate_prime(128, random.Random(123))
    b = generate_prime(128, random.Random(123))
    assert a == b


def test_generate_distinct_primes_are_distinct():
    rng = random.Random(5)
    primes = generate_distinct_primes(8, 32, rng)
    assert len(primes) == 8
    assert len(set(primes)) == 8
    assert all(is_prime(p) for p in primes)


def test_next_prime():
    assert next_prime(0) == 2
    assert next_prime(2) == 3
    assert next_prime(3) == 5
    assert next_prime(13) == 17
    assert next_prime(7918) == 7919


def test_product():
    assert product([]) == 1
    assert product([7]) == 7
    assert product([2, 3, 5]) == 30


@given(st.integers(min_value=2, max_value=10**6))
@settings(max_examples=200)
def test_miller_rabin_no_false_negatives_on_products(n):
    """A product of two integers >= 2 must never be declared prime."""
    assert not is_prime(n * (n + 1))


@given(st.integers(min_value=0, max_value=2**48))
@settings(max_examples=100)
def test_next_prime_is_prime_and_greater(n):
    p = next_prime(n)
    assert p > n
    assert is_prime(p)


@given(st.data())
@settings(max_examples=20, deadline=None)
def test_generated_primes_are_coprime_pairwise(data):
    rng = random.Random(data.draw(st.integers(0, 2**32)))
    primes = generate_distinct_primes(4, 48, rng)
    import math

    for i in range(4):
        for j in range(i + 1, 4):
            assert math.gcd(primes[i], primes[j]) == 1
