"""Tests for membership directory and per-round views."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.membership.directory import Directory
from repro.membership.sampling import PeerSampler, chi_square_uniformity
from repro.membership.views import ViewProvider, default_fanout
from repro.sim.rng import SeedSequence


def make_views(n=20, fanout=3, monitors=3, seed=1):
    directory = Directory.of_size(n)
    return ViewProvider(
        directory=directory,
        seeds=SeedSequence(seed),
        fanout=fanout,
        monitors_per_node=monitors,
    )


class TestDirectory:
    def test_of_size(self):
        d = Directory.of_size(5)
        assert d.size == 5
        assert d.source_id == 0
        assert d.consumers() == [1, 2, 3, 4]

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            Directory.of_size(1)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Directory(members=[1, 1, 2])

    def test_rejects_foreign_source(self):
        with pytest.raises(ValueError):
            Directory(members=[1, 2], source_id=9)

    def test_others(self):
        d = Directory.of_size(4)
        assert d.others(2) == [0, 1, 3]

    def test_validate_subset(self):
        d = Directory.of_size(4)
        d.validate_subset([1, 2])
        with pytest.raises(ValueError):
            d.validate_subset([1, 9])

    def test_contains_and_len(self):
        d = Directory.of_size(4)
        assert 3 in d
        assert 4 not in d
        assert len(d) == 4


class TestDefaultFanout:
    def test_paper_settings(self):
        assert default_fanout(1000) == 3  # section VII-A
        assert default_fanout(10**6) == 6  # Fig. 9 scaling
        assert default_fanout(432) == 3  # the deployment
        assert default_fanout(10) == 3  # floor

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            default_fanout(1)


class TestSuccessors:
    def test_count_and_exclusions(self):
        views = make_views()
        succ = views.successors(5, round_no=0)
        assert len(succ) == 3
        assert 5 not in succ
        assert 0 not in succ  # the source is never served

    def test_deterministic(self):
        assert make_views().successors(5, 3) == make_views().successors(5, 3)

    def test_varies_across_rounds(self):
        views = make_views(n=100)
        picks = {tuple(views.successors(5, r)) for r in range(10)}
        assert len(picks) > 1

    def test_distinct_members(self):
        views = make_views()
        succ = views.successors(7, 2)
        assert len(set(succ)) == len(succ)

    def test_fanout_validation(self):
        with pytest.raises(ValueError):
            make_views(n=4, fanout=4)
        with pytest.raises(ValueError):
            make_views(n=4, fanout=0)


class TestPredecessors:
    def test_inverts_successors(self):
        views = make_views(n=30)
        for node in range(30):
            for succ in views.successors(node, 4):
                assert node in views.predecessors(succ, 4)

    def test_every_predecessor_listed_chose_the_node(self):
        views = make_views(n=30)
        for node in range(1, 30):
            for pred in views.predecessors(node, 4):
                assert node in views.successors(pred, 4)

    def test_source_receives_nothing(self):
        views = make_views(n=30)
        assert views.predecessors(0, 1) == []

    def test_mean_predecessor_count_equals_fanout(self):
        views = make_views(n=50, fanout=3)
        consumers = views.directory.consumers()
        total = sum(len(views.predecessors(c, 2)) for c in consumers)
        # 50 nodes each pick 3 successors among 49 consumers.
        assert total == 50 * 3


class TestMonitors:
    def test_stable_across_rounds(self):
        views = make_views()
        assert views.monitors(5) == views.monitors(5)

    def test_count_and_exclusions(self):
        views = make_views(monitors=4)
        mons = views.monitors(7)
        assert len(mons) == 4
        assert 7 not in mons
        assert 0 not in mons

    def test_monitored_by_inverts(self):
        views = make_views(n=15)
        for node in range(15):
            for mon in views.monitors(node):
                assert node in views.monitored_by(mon)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_views(n=4, monitors=0)


def test_prune_rounds_before():
    views = make_views()
    views.successors(1, 0)
    views.predecessors(1, 0)
    views.successors(1, 5)
    views.prune_rounds_before(3)
    assert 0 not in views._successor_cache
    assert 5 in views._successor_cache


class TestPeerSampler:
    def test_sample_excludes_self_and_source(self):
        sampler = PeerSampler(Directory.of_size(10), SeedSequence(3))
        picks = sampler.sample(4, round_no=0, count=5)
        assert 4 not in picks
        assert 0 not in picks
        assert len(picks) == 5

    def test_sample_too_large(self):
        sampler = PeerSampler(Directory.of_size(5), SeedSequence(3))
        with pytest.raises(ValueError):
            sampler.sample(1, 0, count=4)  # only 3 candidates remain

    def test_deterministic(self):
        s1 = PeerSampler(Directory.of_size(10), SeedSequence(3))
        s2 = PeerSampler(Directory.of_size(10), SeedSequence(3))
        assert s1.sample(2, 5, 3) == s2.sample(2, 5, 3)

    def test_uniformity_chi_square(self):
        # Aggregate successor picks over many rounds; the statistic should
        # stay below a generous chi-square bound for 48 dof (~85 at 99.9%).
        views = make_views(n=50, seed=9)
        observations = []
        for rnd in range(200):
            observations.extend(views.successors(10, rnd))
        population = [m for m in range(50) if m not in (0, 10)]
        stat = chi_square_uniformity(observations, population)
        assert stat < 100.0

    def test_chi_square_validations(self):
        with pytest.raises(ValueError):
            chi_square_uniformity([], [1, 2])
        with pytest.raises(ValueError):
            chi_square_uniformity([9], [1, 2])


@given(st.integers(min_value=5, max_value=60), st.integers(0, 2**16))
@settings(max_examples=30, deadline=None)
def test_views_property_successors_well_formed(n, seed):
    views = ViewProvider(
        directory=Directory.of_size(n),
        seeds=SeedSequence(seed),
        fanout=min(3, n - 2) or 1,
        monitors_per_node=min(3, n - 2) or 1,
    )
    for node in range(0, n, max(1, n // 5)):
        succ = views.successors(node, 1)
        assert node not in succ
        assert 0 not in succ
        assert len(set(succ)) == len(succ)
