"""Tests for the Fig. 10 privacy curves, cross-validated with Monte Carlo."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.coalition import Coalition
from repro.analysis.privacy import (
    acting_discovery_probability,
    figure10_series,
    pag_discovery_probability,
    theoretical_minimum,
)
from repro.membership.directory import Directory
from repro.membership.views import ViewProvider
from repro.sim.rng import SeedSequence


class TestClosedForms:
    def test_boundaries(self):
        assert theoretical_minimum(0.0) == 0.0
        assert theoretical_minimum(1.0) == 1.0
        assert pag_discovery_probability(0.0) == 0.0
        assert pag_discovery_probability(1.0) == pytest.approx(1.0)
        assert acting_discovery_probability(0.0) == 0.0
        assert acting_discovery_probability(1.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            theoretical_minimum(-0.1)
        with pytest.raises(ValueError):
            pag_discovery_probability(1.5)
        with pytest.raises(ValueError):
            pag_discovery_probability(0.5, fanout=0)

    def test_acting_saturates_at_ten_percent(self):
        """Paper: 'all interactions are discovered when an attacker
        controls 10% of nodes in AcTinG'."""
        assert acting_discovery_probability(0.10) > 0.97

    def test_pag_close_to_theoretical_minimum(self):
        """Paper: 'the privacy guarantees of PAG [are] close to ideal'."""
        for c in [0.05, 0.1, 0.2, 0.3]:
            pag = pag_discovery_probability(c, fanout=3)
            minimum = theoretical_minimum(c)
            assert pag >= minimum
            assert pag - minimum < 0.20

    def test_more_monitors_improve_privacy(self):
        """Fig. 10: the PAG-5-monitors curve sits below PAG-3-monitors
        (more predecessors must collude)."""
        for c in [0.1, 0.3, 0.5, 0.7]:
            assert pag_discovery_probability(
                c, fanout=5
            ) <= pag_discovery_probability(c, fanout=3)

    def test_ordering_acting_worst(self):
        for c in [0.05, 0.1, 0.3]:
            acting = acting_discovery_probability(c)
            pag = pag_discovery_probability(c, fanout=3)
            minimum = theoretical_minimum(c)
            assert minimum <= pag <= acting


class TestFigure10Series:
    def test_default_grid(self):
        points = figure10_series()
        assert points[0].attacker_fraction == 0.0
        assert points[-1].attacker_fraction == 1.0
        assert len(points) == 21

    def test_monotone_curves(self):
        points = figure10_series()
        for prev, cur in zip(points, points[1:]):
            assert cur.acting >= prev.acting
            assert cur.pag_3_monitors >= prev.pag_3_monitors
            assert cur.pag_5_monitors >= prev.pag_5_monitors
            assert cur.theoretical_minimum >= prev.theoretical_minimum


@given(st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=60)
def test_pag_bounded_by_min_and_one(c):
    value = pag_discovery_probability(c, fanout=3)
    assert theoretical_minimum(c) - 1e-12 <= value <= 1.0 + 1e-12


class TestMonteCarloCrossValidation:
    def test_structural_rate_tracks_closed_form(self):
        """Sample coalitions on a real topology; the discovered fraction
        must land near the closed form for the same parameters."""
        n = 200
        c = 0.25
        views = ViewProvider(
            directory=Directory.of_size(n),
            seeds=SeedSequence(5),
            fanout=3,
            monitors_per_node=3,
        )
        rng = SeedSequence(9).stream("coalition")
        rates = []
        for _trial in range(5):
            members = set(
                rng.sample(list(views.directory.consumers()), int(n * c))
            )
            coalition = Coalition(members=members)
            rate, _, _ = coalition.discovery_rate(views, [1, 2])
            rates.append(rate)
        mc = sum(rates) / len(rates)
        closed = pag_discovery_probability(c, fanout=3)
        assert abs(mc - closed) < 0.12, (mc, closed)
