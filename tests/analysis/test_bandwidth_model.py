"""Validation of the analytic bandwidth models against the simulator
and against the paper's anchor points."""

import pytest

from repro.analysis.bandwidth import (
    ActingBandwidthModel,
    PagBandwidthModel,
    acting_duplicate_factor,
    pag_duplicate_factor,
    plain_gossip_kbps,
)
from repro.baselines.acting import ActingSession
from repro.core import PagConfig, PagSession


class TestPagModelStructure:
    def test_components_sum_to_total(self):
        model = PagBandwidthModel.for_system(1000, 300.0)
        assert model.total_kbps() == pytest.approx(
            sum(model.components().values())
        )

    def test_payload_dominant_but_not_everything(self):
        model = PagBandwidthModel.for_system(1000, 300.0)
        parts = model.components()
        assert parts["payload"] > 0.3 * model.total_kbps()
        assert parts["buffermaps"] > 0
        assert parts["monitoring"] > 0

    def test_grows_with_fanout(self):
        small = PagBandwidthModel(config=PagConfig(fanout=3))
        large = PagBandwidthModel(config=PagConfig(fanout=6))
        assert large.total_kbps() > small.total_kbps()

    def test_fig8_shape_bandwidth_falls_with_update_size(self):
        """Fig. 8: bigger updates -> fewer hashes per second -> lower
        bandwidth, flattening out around 10-100 kb updates."""
        costs = []
        for size in [938, 2_000, 10_000, 100_000]:
            config = PagConfig.for_system_size(
                1000, stream_rate_kbps=300.0, update_bytes=size
            )
            costs.append(PagBandwidthModel(config=config).total_kbps())
        assert costs[0] > costs[1] > costs[2] > costs[3]
        # The curve flattens: the last step saves much less than the first.
        assert (costs[0] - costs[1]) > (costs[2] - costs[3])

    def test_fig9_shape_logarithmic_scalability(self):
        """Fig. 9: bandwidth grows with log N (through the fanout)."""
        totals = [
            PagBandwidthModel.for_system(n, 300.0).total_kbps()
            for n in (10**3, 10**4, 10**5, 10**6)
        ]
        assert totals == sorted(totals)
        # Anchors: ~1000-1300 at 10^3, ~2500-3000 at 10^6 (paper: 2500).
        assert 800 < totals[0] < 1600
        assert 2000 < totals[-1] < 3500
        # Growth is sub-linear in N (logarithmic through the fanout).
        assert totals[-1] / totals[0] < 3.0


class TestActingModel:
    def test_near_paper_anchor(self):
        """Paper: AcTinG ~460 Kbps at 300 Kbps / ~1000 nodes."""
        total = ActingBandwidthModel.for_system(1000, 300.0).total_kbps()
        assert 330 < total < 600

    def test_cheaper_than_pag_everywhere(self):
        for n in (10**3, 10**4, 10**6):
            pag = PagBandwidthModel.for_system(n, 300.0).total_kbps()
            acting = ActingBandwidthModel.for_system(n, 300.0).total_kbps()
            assert acting < pag

    def test_components_sum(self):
        model = ActingBandwidthModel.for_system(1000, 300.0)
        assert model.total_kbps() == pytest.approx(
            sum(model.components().values())
        )


class TestDuplicateFactors:
    def test_depth4_table(self):
        assert pag_duplicate_factor(3, 4) == pytest.approx(2.8)
        assert pag_duplicate_factor(6, 4) == pytest.approx(5.6)

    def test_deep_buffermap_suppresses_recirculation(self):
        assert pag_duplicate_factor(3, 10) < pag_duplicate_factor(3, 4)

    def test_shallow_buffermap_explodes(self):
        assert pag_duplicate_factor(3, 2) > pag_duplicate_factor(3, 4) * 2

    def test_acting_mild(self):
        assert 1.0 < acting_duplicate_factor(3) < 1.5


class TestModelVsSimulator:
    """The headline validation: the closed form must track the packet
    simulator within a modest band at small scale."""

    def test_pag_model_tracks_simulator(self):
        n = 40
        config = PagConfig.for_system_size(n, stream_rate_kbps=150.0)
        session = PagSession.create(n, config=config)
        session.run(14)
        simulated = session.mean_bandwidth_kbps(
            warmup_rounds=4, direction="down"
        )
        model = PagBandwidthModel(config=config).total_kbps()
        assert simulated == pytest.approx(model, rel=0.45), (
            simulated,
            model,
        )

    def test_acting_model_tracks_simulator(self):
        session = ActingSession.create(30)
        session.run(15)
        simulated = session.mean_bandwidth_kbps(5, "down")
        model = ActingBandwidthModel.for_system(30, 300.0).total_kbps()
        assert simulated == pytest.approx(model, rel=0.45), (
            simulated,
            model,
        )

    def test_pag_costs_more_than_acting_in_simulation_too(self):
        pag = PagSession.create(30)
        pag.run(12)
        acting = ActingSession.create(30)
        acting.run(12)
        assert pag.mean_bandwidth_kbps(4, "down") > (
            acting.mean_bandwidth_kbps(4, "down")
        )


def test_plain_gossip_is_the_floor():
    plain = plain_gossip_kbps(300.0)
    acting = ActingBandwidthModel.for_system(1000, 300.0).total_kbps()
    pag = PagBandwidthModel.for_system(1000, 300.0).total_kbps()
    assert plain < pag
    # Plain gossip without negotiation duplicates more than AcTinG's
    # payload path but skips all accountability overhead.
    assert plain < pag
    assert acting > 300.0
