"""Tests for Table I cost accounting and Table II quality feasibility."""

import pytest

from repro.analysis.costs import (
    hashes_per_second,
    signatures_per_second,
    table1_rows,
)
from repro.analysis.quality import (
    acting_cost_of_quality,
    pag_cost_of_quality,
    table2,
)
from repro.streaming.video import QUALITY_LADDER, quality_by_name


class TestTable1:
    def test_signature_constant_is_paper_exact(self):
        """Table I: '33' RSA signatures per second, independent of the
        video quality, at f = fm = 3."""
        assert signatures_per_second(3, 3) == 33.0

    def test_signatures_independent_of_quality(self):
        rows = table1_rows()
        assert len({r.rsa_signatures_per_s for r in rows}) == 1

    def test_hashes_linear_in_rate(self):
        """Near-linear: a small constant term (attestations, acks,
        lifts) keeps the ratio slightly under the pure rate ratio."""
        h_144 = hashes_per_second(quality_by_name("144p"))
        h_1080 = hashes_per_second(quality_by_name("1080p"))
        ratio = h_1080 / h_144
        rate_ratio = 4500 / 80
        assert ratio == pytest.approx(rate_ratio, rel=0.10)
        assert ratio < rate_ratio

    def test_hashes_same_order_as_paper(self):
        """Paper's 1080p row: 7200 hashes/s.  Our protocol hashes the
        buffermap once per issued prime, giving the same order of
        magnitude (the exact constant depends on the per-update hash
        count: paper ~12/update, ours ~15-20/update with the measured
        duplicate factor)."""
        h = hashes_per_second(quality_by_name("1080p"))
        assert 5_000 < h < 20_000

    def test_rows_cover_ladder(self):
        rows = table1_rows()
        assert [r.quality for r in rows] == [
            q.name for q in QUALITY_LADDER
        ]

    def test_720p_fits_one_core_at_paper_rate(self):
        """Section VII-C: one core does 4800 hashes/s (openssl, 512-bit
        modulus); 720p must fit within roughly one or two cores."""
        h = hashes_per_second(quality_by_name("720p"))
        assert h < 2 * 4800


class TestTable2:
    @pytest.fixture(scope="class")
    def table(self):
        return table2(n_nodes=1000)

    def test_rac_row_is_empty(self, table):
        assert all(cell.quality is None for cell in table["RAC"])

    def test_acting_adsl_cell_matches_paper(self, table):
        """Paper: AcTinG sustains 480p at 1.4 Mbps on ADSL Lite."""
        cell = table["AcTinG"][0]
        assert cell.quality == "480p"
        assert cell.used_kbps == pytest.approx(1400, rel=0.25)

    def test_acting_reaches_1080p_from_10mbps(self, table):
        assert table["AcTinG"][1].quality == "1080p"

    def test_pag_sustains_low_quality_on_adsl(self, table):
        """Paper: PAG fits 144p in 1.5 Mbps; our lighter ghost handling
        lands one rung up at most."""
        assert table["PAG"][0].quality in ("144p", "240p")

    def test_pag_reaches_1080p_from_100mbps(self, table):
        assert table["PAG"][2].quality == "1080p"

    def test_pag_always_below_acting(self, table):
        order = [q.name for q in QUALITY_LADDER]
        for pag_cell, acting_cell in zip(table["PAG"], table["AcTinG"]):
            pag_rank = order.index(pag_cell.quality)
            acting_rank = order.index(acting_cell.quality)
            assert pag_rank <= acting_rank

    def test_cells_render(self, table):
        assert table["RAC"][0].render() == "∅"
        assert "p (" in table["PAG"][0].render()

    def test_costs_monotone_in_quality(self):
        costs = [
            pag_cost_of_quality(q) for q in QUALITY_LADDER
        ]
        assert costs == sorted(costs)
        costs_a = [acting_cost_of_quality(q) for q in QUALITY_LADDER]
        assert costs_a == sorted(costs_a)
