"""Tests for detection latency and the selfish-population impact study."""

import pytest

from repro.adversary.selfish import ContactAvoider, FreeRider
from repro.analysis.detection import (
    detection_latency,
    selfish_population_impact,
)


class TestDetectionLatency:
    def test_free_rider_caught_within_dispute_window(self):
        result = detection_latency(FreeRider())
        assert result.first_violation_round is not None
        assert result.first_conviction_round is not None
        # The monitoring pipeline needs the obligation round plus up to
        # two dispute rounds.
        assert result.latency_rounds <= 3

    def test_contact_avoider_caught(self):
        result = detection_latency(ContactAvoider())
        assert result.first_conviction_round is not None

    def test_latency_none_when_never_convicted(self):
        from repro.core.behavior import CorrectBehavior

        result = detection_latency(CorrectBehavior(), max_rounds=8)
        assert result.first_conviction_round is None
        assert result.latency_rounds is None


class TestPopulationImpact:
    @pytest.fixture(scope="class")
    def sweep(self):
        return selfish_population_impact(
            [0.0, 0.3, 0.7], n_nodes=24, rounds=18
        )

    def test_degradation_reproduces_the_motivating_claim(self, sweep):
        """Section I: 'above a given proportion of selfish clients, the
        compliant clients observe a major degradation in the quality of
        the video stream'."""
        by_fraction = {r.selfish_fraction: r for r in sweep}
        assert by_fraction[0.0].compliant_continuity > 0.95
        assert by_fraction[0.3].compliant_continuity >= (
            by_fraction[0.7].compliant_continuity
        )
        assert by_fraction[0.7].compliant_continuity < 0.6

    def test_no_detection_means_no_convictions(self, sweep):
        for r in sweep:
            assert r.selfish_convicted_fraction == 0.0

    def test_detection_convicts_the_population(self):
        results = selfish_population_impact(
            [0.3], n_nodes=24, rounds=18, detection_enabled=True
        )
        assert results[0].selfish_convicted_fraction > 0.9
