"""Executable Nash-equilibrium check (section VI-B).

"Our analysis shows that PAG is a Nash equilibrium, which means that
selfish nodes have no interest in deviating from the protocol."  Every
deviation in the catalogue must be unprofitable under the utility model.
"""

import pytest

from repro.adversary.selfish import (
    ContactAvoider,
    DeclarationSkipper,
    FreeRider,
    PartialForwarder,
    SilentReceiver,
    StealthyFreeRider,
)
from repro.analysis.nash import UtilityModel, evaluate_deviation

DEVIATIONS = [
    FreeRider(),
    PartialForwarder(keep_fraction=0.5, seed=1),
    SilentReceiver(),
    DeclarationSkipper(),
    ContactAvoider(),
    StealthyFreeRider(drop_every=4),
]


class TestUtilityModel:
    def test_utility_arithmetic(self):
        model = UtilityModel(
            benefit_per_continuity=100.0, cost_per_kbps=0.01, punishment=50.0
        )
        assert model.utility(1.0, 1000.0, convicted=False) == pytest.approx(
            90.0
        )
        assert model.utility(1.0, 1000.0, convicted=True) == pytest.approx(
            40.0
        )
        assert model.utility(0.0, 0.0, convicted=False) == 0.0


@pytest.mark.parametrize(
    "behavior", DEVIATIONS, ids=[type(b).__name__ for b in DEVIATIONS]
)
def test_no_deviation_is_profitable(behavior):
    outcome = evaluate_deviation(behavior, n_nodes=20, rounds=16)
    assert outcome.deviant_convicted, (
        f"{outcome.deviation} was never convicted"
    )
    assert not outcome.deviation_profitable, (
        f"{outcome.deviation}: deviant utility "
        f"{outcome.deviant_utility:.1f} exceeds correct utility "
        f"{outcome.correct_utility:.1f} — Nash equilibrium falsified"
    )


def test_bandwidth_saving_is_real_but_dominated():
    """The temptation exists (free-riding does save bandwidth), yet the
    punishment dominates — the exact structure of the incentive
    argument."""
    outcome = evaluate_deviation(FreeRider(), n_nodes=20, rounds=16)
    assert outcome.bandwidth_saved_kbps > 0
    saving_value = (
        UtilityModel().cost_per_kbps * outcome.bandwidth_saved_kbps
    )
    assert UtilityModel().punishment > saving_value


def test_without_punishment_deviation_would_pay():
    """Sanity check that the equilibrium hinges on detection: with a
    toothless monitor (zero punishment), free-riding is profitable —
    which is exactly why plain gossip degrades (section I)."""
    model = UtilityModel(punishment=0.0)
    outcome = evaluate_deviation(
        FreeRider(), n_nodes=20, rounds=16, model=model
    )
    # The deviant still watches the stream (R1 satisfied by others'
    # serves) while paying less upload.
    assert outcome.deviant_utility > outcome.correct_utility - 1e-6
