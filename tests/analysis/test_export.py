"""Tests for the results exporter."""

import csv
import json

import pytest

from repro.analysis.export import EXPORTERS, export_all


@pytest.fixture(scope="module")
def artefacts(tmp_path_factory):
    out = tmp_path_factory.mktemp("results")
    return export_all(out), out


def test_every_exporter_writes_a_file(artefacts):
    written, out = artefacts
    assert set(written) == set(EXPORTERS)
    for path in written.values():
        assert path.exists()
        assert path.stat().st_size > 0


def test_fig9_csv_is_well_formed(artefacts):
    written, _ = artefacts
    with written["fig9"].open() as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 4
    assert rows[0]["nodes"] == "1000"
    for row in rows:
        assert float(row["pag_kbps"]) > float(row["acting_kbps"])


def test_fig10_fractions_cover_unit_interval(artefacts):
    written, _ = artefacts
    with written["fig10"].open() as handle:
        rows = list(csv.DictReader(handle))
    fractions = [float(r["attacker_fraction"]) for r in rows]
    assert fractions[0] == 0.0
    assert fractions[-1] == 1.0


def test_table2_json_structure(artefacts):
    written, _ = artefacts
    payload = json.loads(written["table2"].read_text())
    assert set(payload) == {"PAG", "AcTinG", "RAC"}
    assert all(cell["quality"] is None for cell in payload["RAC"])


def test_table1_signature_constant_in_csv(artefacts):
    written, _ = artefacts
    with written["table1"].open() as handle:
        rows = list(csv.DictReader(handle))
    assert all(float(r["signatures_per_s"]) == 33.0 for r in rows)


def test_cli_export_command(tmp_path, capsys):
    from repro.cli import main

    assert main(["export", "--out", str(tmp_path / "r")]) == 0
    out = capsys.readouterr().out
    assert "fig9" in out
    assert (tmp_path / "r" / "fig9_scalability.csv").exists()
