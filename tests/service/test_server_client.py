"""Service protocol round-trips over the in-process mem:// transport.

The contract under test: health polls leave the connection reusable, a
subscription streams EventFrames until the run drains (connection
close is end-of-stream), observers may attach and detach mid-run
without perturbing the session, and every malformed request gets an
error reply instead of a hangup.
"""

import asyncio
import io
import json
import threading

import pytest

from repro import api
from repro.net import wire
from repro.net.daemon import recv_message, send_message
from repro.net.transport import connect, reset_memory_transport
from repro.scenarios.spec import ScenarioSpec
from repro.service.client import (
    ServiceClient,
    ServiceProtocolError,
    request_control,
    request_health,
)
from repro.service.dashboard import run_watch
from repro.service.server import ServiceServer
from repro.service.supervisor import SessionSupervisor


@pytest.fixture(autouse=True)
def _fresh_memory_transport():
    reset_memory_transport()
    yield
    reset_memory_transport()


def _spec(**overrides):
    overrides.setdefault("name", "svc-test")
    overrides.setdefault("nodes", 12)
    overrides.setdefault("rounds", 6)
    overrides.setdefault("warmup_rounds", 2)
    overrides.setdefault("node_strategies", ((6, "free-rider"),))
    return ScenarioSpec(**overrides)


async def _serve(spec, endpoint="mem://svc-test", **kwargs):
    supervisor = SessionSupervisor(spec, **kwargs)
    server = ServiceServer(supervisor, endpoint)
    resolved = await server.start()
    return supervisor, server, resolved


class TestRoundTrip:
    def test_health_control_and_stream(self):
        async def scenario():
            spec = _spec()
            supervisor, server, endpoint = await _serve(
                spec, round_delay=0.02
            )
            async with ServiceClient(endpoint) as client:
                report = await client.health()
                assert report.scenario == spec.name
                assert report.total_rounds == spec.rounds
                # The connection stays usable after a poll.
                report = await client.health()
                assert report.state in ("init", "running")
                response = await client.control("churn", node_id=5)
                assert response.ok
                assert "node 5 removed" in response.detail
            events = []
            async with ServiceClient(endpoint) as client:
                async for event in client.subscribe():
                    events.append(event)
            assert await server.wait() == 0
            return supervisor, events

        supervisor, events = asyncio.run(scenario())
        assert supervisor.state == "stopped"
        assert supervisor.result is not None
        assert 5 not in supervisor.result.session.nodes
        kinds = {event["kind"] for event in events}
        assert "round" in kinds and "meter" in kinds
        seqs = [event["seq"] for event in events]
        assert seqs == sorted(seqs)

    def test_observer_detach_mid_run_does_not_stop_the_session(self):
        async def scenario():
            spec = _spec(rounds=8)
            supervisor, server, endpoint = await _serve(
                spec, round_delay=0.02
            )
            got = []
            async with ServiceClient(endpoint) as client:
                async for event in client.subscribe(kinds=("round",)):
                    got.append(event)
                    if len(got) >= 2:
                        break
            assert await server.wait() == 0
            return supervisor, got

        supervisor, got = asyncio.run(scenario())
        assert supervisor.state == "stopped"
        assert len(got) == 2
        assert all(event["kind"] == "round" for event in got)
        # The run finished every declared round after the hangup.
        assert supervisor.rounds_completed == 8


class TestProtocolErrors:
    def test_invalid_subscription_kinds_are_refused(self):
        async def scenario():
            supervisor, server, endpoint = await _serve(
                _spec(), round_delay=0.02
            )
            async with ServiceClient(endpoint) as client:
                with pytest.raises(
                    ServiceProtocolError, match="refused"
                ):
                    async for _ in client.subscribe(kinds=("bogus",)):
                        pass
            supervisor.stop()
            await server.wait()

        asyncio.run(scenario())

    def test_invalid_control_op_is_an_error_reply(self):
        async def scenario():
            supervisor, server, endpoint = await _serve(
                _spec(), round_delay=0.02
            )
            async with ServiceClient(endpoint) as client:
                response = await client.control("reboot")
                assert not response.ok
                assert "unknown control op" in response.detail
            supervisor.stop()
            await server.wait()

        asyncio.run(scenario())

    def test_unexpected_frame_is_an_error_reply(self):
        async def scenario():
            supervisor, server, endpoint = await _serve(
                _spec(), round_delay=0.02
            )
            conn = await connect(endpoint)
            await send_message(conn, wire.RoundStart(round_no=0))
            reply = await recv_message(conn)
            assert isinstance(reply, wire.ControlResponse)
            assert not reply.ok
            assert "RoundStart" in reply.detail
            await conn.close()
            supervisor.stop()
            await server.wait()

        asyncio.run(scenario())


class TestSyncHelpers:
    """The `repro ctl` / `repro watch` code paths, served from a
    background thread the way `repro serve` runs in-process."""

    def test_ctl_and_watch_against_a_threaded_server(self):
        listening = threading.Event()
        holder = {}

        def on_listening(endpoint):
            holder["endpoint"] = endpoint
            listening.set()

        def target():
            holder["result"] = api.serve(
                "fig7",
                "mem://svc-sync-helpers",
                nodes=12,
                rounds=8,
                round_delay=0.02,
                on_listening=on_listening,
            )

        thread = threading.Thread(target=target)
        thread.start()
        try:
            assert listening.wait(timeout=30)
            endpoint = holder["endpoint"]
            health = request_health(endpoint)
            assert health["scenario"] == "fig7"
            assert health["total_rounds"] == 8
            ok, detail, state = request_control(
                endpoint, "churn", node_id=5
            )
            assert ok and "node 5 removed" in detail
            assert state in ("running", "paused")
            buffer = io.StringIO()
            assert run_watch(
                endpoint, raw=True, out=buffer, max_events=3
            ) == 0
            lines = buffer.getvalue().strip().splitlines()
            assert len(lines) == 3
            for line in lines:
                event = json.loads(line)
                assert event["kind"] in (
                    "state", "round", "meter", "counters", "verdict",
                )
        finally:
            thread.join(timeout=60)
        assert not thread.is_alive()
        result = holder["result"]
        assert 5 not in result.session.nodes
