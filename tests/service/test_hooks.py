"""SessionTap contract: faithful observation, zero perturbation.

The tap may only *read*: a tapped run must produce byte-identical
measurements to an untapped one, attach/detach must work mid-run, and
with no subscriber on the bus the hooks must publish nothing at all.
"""

import pytest

from repro.core.monitor import MONITOR_COUNTER_KEYS
from repro.scenarios.spec import ScenarioSpec
from repro.service.events import EventBus
from repro.service.hooks import SessionTap


def _spec(**overrides):
    overrides.setdefault("name", "tap-test")
    overrides.setdefault("nodes", 12)
    overrides.setdefault("rounds", 6)
    overrides.setdefault("warmup_rounds", 2)
    overrides.setdefault("node_strategies", ((6, "free-rider"),))
    return ScenarioSpec(**overrides)


@pytest.fixture()
def baseline():
    return _spec().run()


def _tapped_run(bus, rounds=None, spec=None):
    spec = spec if spec is not None else _spec()
    session = spec.build(None)
    tap = SessionTap(session, bus)
    tap.attach()
    session.run(rounds if rounds is not None else spec.rounds)
    return spec, session, tap


class TestZeroCost:
    def test_no_subscriber_publishes_nothing(self):
        bus = EventBus()
        _tapped_run(bus)
        assert bus.published == 0

    def test_attach_is_idempotent(self):
        bus = EventBus()
        spec = _spec()
        session = spec.build(None)
        tap = SessionTap(session, bus)
        tap.attach()
        tap.attach()
        sub = bus.subscribe(kinds=("round",))
        session.run(spec.rounds)
        events, _ = sub.drain()
        assert len(events) == spec.rounds


class TestFidelity:
    def test_tapped_run_is_bit_identical(self, baseline):
        bus = EventBus()
        bus.subscribe()  # force the full event-assembly path
        spec, session, _ = _tapped_run(bus)
        from repro.scenarios.spec import ScenarioResult

        result = ScenarioResult.collect(spec, session)
        assert result.summary() == baseline.summary()
        assert result.node_kbps == baseline.node_kbps

    def test_round_meter_and_verdict_events(self):
        bus = EventBus()
        sub = bus.subscribe()
        spec, session, tap = _tapped_run(bus)
        events, dropped = sub.drain()
        assert dropped == 0
        by_kind = {}
        for event in events:
            by_kind.setdefault(event.kind, []).append(event)
        assert len(by_kind["round"]) == spec.rounds
        assert len(by_kind["meter"]) == spec.rounds
        # One verdict event per monitor conviction; the deduplicated
        # session count is a lower bound.
        assert len(by_kind["verdict"]) >= len(session.all_verdicts())
        assert by_kind["verdict"][0].data["node"] == 6
        # Meter deltas telescope back to the cumulative totals.
        last = by_kind["meter"][-1].data
        assert last["bytes_up"] == sum(
            e.data["bytes_up_delta"] for e in by_kind["meter"]
        )
        # Counter events only carry non-zero deltas, keyed canonically.
        for event in by_kind.get("counters", ()):
            assert event.data, "counters event must not be empty"
            for key, delta in event.data.items():
                assert key in MONITOR_COUNTER_KEYS
                assert delta != 0

    def test_verdict_events_count_monotonically(self):
        bus = EventBus()
        sub = bus.subscribe(kinds=("verdict",))
        _tapped_run(bus)
        events, _ = sub.drain()
        totals = [e.data["total_verdicts"] for e in events]
        assert totals == list(range(1, len(events) + 1))


class TestDetach:
    def test_detach_mid_run_stops_the_stream(self):
        bus = EventBus()
        sub = bus.subscribe(kinds=("round",))
        spec = _spec()
        session = spec.build(None)
        tap = SessionTap(session, bus)
        tap.attach()
        session.run(2)
        tap.detach()
        session.run(spec.rounds - 2)
        events, _ = sub.drain()
        assert [e.round_no for e in events] == [0, 1]

    def test_attach_mid_run_joins_the_stream(self, baseline):
        bus = EventBus()
        sub = bus.subscribe(kinds=("round",))
        spec = _spec()
        session = spec.build(None)
        session.run(3)
        tap = SessionTap(session, bus)
        tap.attach()
        session.run(spec.rounds - 3)
        events, _ = sub.drain()
        assert [e.round_no for e in events] == [3, 4, 5]
        from repro.scenarios.spec import ScenarioResult

        result = ScenarioResult.collect(spec, session)
        assert result.summary() == baseline.summary()


class TestSnapshot:
    def test_snapshot_shape(self):
        bus = EventBus()
        spec, session, tap = _tapped_run(bus)
        snap = tap.snapshot(scenario=spec.name)
        assert snap["scenario"] == spec.name
        assert snap["round"] == spec.rounds
        assert snap["nodes"] == len(session.nodes) + 1
        assert snap["convicted"] == [6]
        assert sorted(snap["accusations"]) == sorted(MONITOR_COUNTER_KEYS)
        assert snap["verdicts"] == len(session.all_verdicts())
