"""The `repro watch` line formats, pinned per event kind.

:func:`render_event` is a pure function from a decoded event dict to
one output line, so the dashboard's look is locked here without a
server in the loop.
"""

import json

from repro.service.dashboard import render_event


class TestLayouts:
    def test_state_line(self):
        line = render_event({
            "kind": "state", "round": 0,
            "state": "running", "scenario": "fig7", "restarts": 0,
        })
        assert line == "state    running | scenario fig7"

    def test_state_line_with_restarts_and_error(self):
        line = render_event({
            "kind": "state", "round": 4,
            "state": "failed", "scenario": "fig7",
            "restarts": 2, "error": "round 4 crashed",
        })
        assert "restarts 2" in line
        assert "error: round 4 crashed" in line

    def test_round_line(self):
        line = render_event({
            "kind": "round", "round": 3, "nodes": 24,
            "pending": 1, "messages": 900, "messages_delta": 120,
        })
        assert line == (
            "round    3 | nodes 24 | pending 1 | msgs 900 (+120)"
        )

    def test_meter_line_scales_to_kib(self):
        line = render_event({
            "kind": "meter", "round": 2,
            "bytes_up": 2048, "bytes_up_delta": 1024,
            "bytes_down": 4096, "bytes_down_delta": -512,
        })
        assert "up 2.0 KiB (+1024 B)" in line
        assert "down 4.0 KiB (-512 B)" in line

    def test_counters_line_lists_deltas_sorted(self):
        line = render_event({
            "kind": "counters", "round": 5, "seq": 9,
            "verdicts": 2, "accusations_sent": 4,
        })
        assert line == "count    5 | accusations_sent +4, verdicts +2"

    def test_verdict_line(self):
        line = render_event({
            "kind": "verdict", "round": 4, "node": 6,
            "reason": "refused_reception", "detected_by": 11,
            "total_verdicts": 3,
        })
        assert line == (
            "VERDICT  node 6 (refused_reception) detected by 11 "
            "at round 4 | total 3"
        )

    def test_unknown_kind_falls_back_to_json(self):
        event = {"kind": "mystery", "round": 1, "x": 2}
        assert render_event(event) == json.dumps(event, sort_keys=True)

    def test_dropped_prefix_line(self):
        line = render_event({
            "kind": "round", "round": 7, "nodes": 10,
            "pending": 0, "messages": 50, "messages_delta": 5,
            "dropped": 12,
        })
        first, second = line.split("\n")
        assert first == "[dropped 12 events]"
        assert second.startswith("round    7")
