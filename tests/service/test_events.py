"""EventBus contract: zero cost unobserved, bounded never-blocking
fan-out when observed.

These are the two properties the service mode's engine hooks rely on
(`repro.service.hooks`): an unobserved run must publish nothing (one
attribute check per round), and a slow observer must cost the engine
nothing — its oldest events drop, counted, while ``publish`` returns
immediately.
"""

import json
import threading

import pytest

from repro.service.events import EVENT_KINDS, EventBus


class TestUnobserved:
    def test_publish_without_subscribers_returns_none(self):
        bus = EventBus()
        assert not bus.active
        assert bus.publish("round", 0, {"nodes": 3}) is None
        # Nothing was assembled or sequenced: a later subscriber's
        # stream starts at seq 0.
        assert bus.published == 0
        sub = bus.subscribe()
        event = bus.publish("round", 1, {"nodes": 3})
        assert event is not None and event.seq == 0
        sub.close()

    def test_active_tracks_subscribers(self):
        bus = EventBus()
        sub = bus.subscribe()
        assert bus.active and bus.subscriber_count == 1
        sub.close()
        assert not bus.active and bus.subscriber_count == 0


class TestFanOut:
    def test_drain_returns_events_in_publish_order(self):
        bus = EventBus()
        sub = bus.subscribe()
        for round_no in range(5):
            bus.publish("round", round_no, {"nodes": 4})
        events, dropped = sub.drain()
        assert dropped == 0
        assert [e.seq for e in events] == list(range(5))
        assert [e.round_no for e in events] == list(range(5))
        # Drain empties the queue.
        assert sub.drain() == ([], 0)

    def test_kind_filter(self):
        bus = EventBus()
        verdicts = bus.subscribe(kinds=("verdict",))
        everything = bus.subscribe()
        bus.publish("round", 0, {})
        bus.publish("verdict", 0, {"node": 5})
        bus.publish("meter", 0, {})
        got, _ = verdicts.drain()
        assert [e.kind for e in got] == ["verdict"]
        got, _ = everything.drain()
        assert [e.kind for e in got] == ["round", "verdict", "meter"]

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown event kinds"):
            EventBus().subscribe(kinds=("nope",))

    def test_queue_bound_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            EventBus().subscribe(maxlen=0)

    def test_unsubscribe_twice_is_safe(self):
        bus = EventBus()
        sub = bus.subscribe()
        sub.close()
        sub.close()
        bus.publish("round", 0, {})
        assert sub.drain() == ([], 0)


class TestBackpressure:
    def test_slow_consumer_drops_oldest_and_counts(self):
        bus = EventBus()
        sub = bus.subscribe(maxlen=4)
        for round_no in range(10):
            bus.publish("round", round_no, {})
        events, dropped = sub.drain()
        assert dropped == 6
        assert sub.dropped_total == 6
        # The *newest* events survive.
        assert [e.round_no for e in events] == [6, 7, 8, 9]
        # The pending drop count resets once reported.
        bus.publish("round", 10, {})
        events, dropped = sub.drain()
        assert dropped == 0 and len(events) == 1
        sub.close()

    def test_one_stalled_subscriber_cannot_starve_another(self):
        bus = EventBus()
        stalled = bus.subscribe(maxlen=2)
        healthy = bus.subscribe()
        for round_no in range(8):
            bus.publish("round", round_no, {})
        got, dropped = healthy.drain()
        assert len(got) == 8 and dropped == 0
        got, dropped = stalled.drain()
        assert len(got) == 2 and dropped == 6

    def test_waker_fires_only_for_matching_kinds(self):
        bus = EventBus()
        wakes = []
        sub = bus.subscribe(
            kinds=("verdict",), waker=lambda: wakes.append(1)
        )
        bus.publish("round", 0, {})
        assert wakes == []
        bus.publish("verdict", 0, {"node": 3})
        assert wakes == [1]
        sub.close()

    def test_waker_runs_outside_the_bus_lock(self):
        bus = EventBus()
        # A waker that re-enters the bus deadlocks if publish held the
        # lock while invoking it.
        sub = bus.subscribe(waker=lambda: bus.subscriber_count)
        reentrant = bus.publish("round", 0, {})
        assert reentrant is not None
        sub.close()

    def test_concurrent_publish_and_drain_conserves_events(self):
        bus = EventBus()
        sub = bus.subscribe(maxlen=16)
        total = 500
        taken = []

        def pump():
            for round_no in range(total):
                bus.publish("round", round_no, {})

        thread = threading.Thread(target=pump)
        thread.start()
        while thread.is_alive():
            taken.extend(sub.drain()[0])
        thread.join()
        taken.extend(sub.drain()[0])
        assert sub.delivered_total + sub.dropped_total == total
        seqs = [e.seq for e in taken]
        assert seqs == sorted(seqs)


class TestEventPayload:
    def test_to_json_is_canonical_single_line(self):
        bus = EventBus()
        sub = bus.subscribe()
        event = bus.publish("meter", 3, {"bytes_up": 10, "a": 1})
        raw = event.to_json()
        assert b"\n" not in raw
        decoded = json.loads(raw)
        assert decoded == {
            "seq": 0, "kind": "meter", "round": 3,
            "bytes_up": 10, "a": 1,
        }
        # sort_keys + compact separators: byte-stable across runs.
        assert raw == json.dumps(
            decoded, sort_keys=True, separators=(",", ":")
        ).encode()
        sub.close()

    def test_kind_vocabulary_is_pinned(self):
        assert EVENT_KINDS == (
            "state", "round", "meter", "counters", "verdict",
        )
