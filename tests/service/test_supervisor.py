"""Supervisor lifecycle, operator control, and the determinism oracle.

The load-bearing test is the differential: a scripted operator
schedule (strategy flip, churn, admission) replayed through the
control API must produce measurements bit-identical to the same
schedule declared statically in the ScenarioSpec.  That equivalence is
what makes `repro ctl` safe to use on a run whose numbers matter.
"""

import dataclasses
import json
import threading

import pytest

from repro.scenarios.spec import ChurnEvent, JoinEvent, ScenarioSpec
from repro.service.supervisor import (
    STATES,
    ControlOp,
    SessionSupervisor,
    SupervisorError,
)


def _base(**overrides):
    overrides.setdefault("name", "sup-test")
    overrides.setdefault("nodes", 16)
    overrides.setdefault("rounds", 8)
    overrides.setdefault("warmup_rounds", 2)
    return ScenarioSpec(**overrides)


def _fingerprint(result):
    return {
        "summary": result.summary(),
        "node_kbps": result.node_kbps,
        "verdicts": [
            (v.node, v.exchange_round, v.reason.value, v.detected_by)
            for v in result.session.all_verdicts()
        ],
    }


class TestDeterminismOracle:
    def test_scripted_schedule_matches_static_spec(self):
        """churn + admit + strategy via control ops == static spec."""
        membership = dict(
            churn=(ChurnEvent(after_round=3, node_id=5),),
            arrivals=(JoinEvent(after_round=4, node_id=15),),
        )
        static = _base(
            node_strategies=((7, "free-rider"),), **membership
        )
        dynamic_spec = _base(**membership)
        supervisor = SessionSupervisor(
            dynamic_spec,
            manual_membership=True,
            schedule=(
                ControlOp(
                    "strategy", node_id=7, arg="free-rider",
                    after_round=-1,
                ),
                ControlOp("churn", node_id=5, after_round=3),
                ControlOp("admit", node_id=15, after_round=4),
            ),
        )
        dynamic = supervisor.run()
        assert supervisor.state == "stopped"
        assert _fingerprint(dynamic) == _fingerprint(static.run())

    def test_unscheduled_run_matches_plain_run(self):
        spec = _base(node_strategies=((7, "silent-receiver"),))
        supervised = SessionSupervisor(spec).run()
        assert _fingerprint(supervised) == _fingerprint(spec.run())


class TestCrashContainment:
    def _crash_once(self, supervisor, at_call):
        supervisor.start()
        original = supervisor.session.run
        calls = {"n": 0}

        def flaky(rounds):
            calls["n"] += 1
            if calls["n"] == at_call:
                raise RuntimeError("injected crash")
            return original(rounds)

        supervisor.session.run = flaky

    def test_restart_replays_to_a_bit_identical_result(self):
        spec = _base(node_strategies=((7, "free-rider"),))
        baseline = SessionSupervisor(
            spec, schedule=(ControlOp("churn", node_id=5, after_round=3),)
        ).run()
        supervisor = SessionSupervisor(
            spec,
            schedule=(ControlOp("churn", node_id=5, after_round=3),),
            max_restarts=1,
        )
        self._crash_once(supervisor, at_call=6)
        result = supervisor.run()
        assert supervisor.restarts == 1
        assert supervisor.state == "stopped"
        assert _fingerprint(result) == _fingerprint(baseline)

    def test_no_restart_budget_fails_fast(self):
        supervisor = SessionSupervisor(_base())
        self._crash_once(supervisor, at_call=3)
        with pytest.raises(SupervisorError, match="injected crash"):
            supervisor.run()
        assert supervisor.state == "failed"
        assert "crashed" in supervisor.error
        ok, detail = supervisor.control(ControlOp("pause"))
        assert not ok and "failed" in detail


class TestValidation:
    def test_worker_replica_policies_are_rejected(self):
        with pytest.raises(SupervisorError, match="serial-schedule"):
            SessionSupervisor(_base(policy="parallel", workers=2))

    def test_population_specs_are_rejected(self):
        with pytest.raises(SupervisorError, match="population"):
            SessionSupervisor(_base(population=20))

    def test_scripted_ops_need_a_boundary(self):
        with pytest.raises(ValueError, match="after_round"):
            SessionSupervisor(
                _base(), schedule=(ControlOp("churn", node_id=5),)
            )

    def test_snapshot_is_not_schedulable(self):
        with pytest.raises(ValueError, match="snapshot"):
            SessionSupervisor(
                _base(),
                schedule=(ControlOp("snapshot", after_round=2),),
            )

    def test_unknown_op_name_is_rejected(self):
        with pytest.raises(ValueError, match="unknown control op"):
            ControlOp("reboot")

    def test_failing_scripted_op_aborts_the_run(self):
        supervisor = SessionSupervisor(
            _base(),
            # node 99 does not exist -> the op fails -> scripted runs
            # must abort, not silently diverge from their schedule.
            schedule=(ControlOp("churn", node_id=99, after_round=2),),
        )
        with pytest.raises(SupervisorError, match="scripted op"):
            supervisor.run()
        assert supervisor.state == "failed"


class TestLiveControl:
    def _run_in_thread(self, supervisor):
        holder = {}

        def target():
            try:
                holder["result"] = supervisor.run()
            except SupervisorError as exc:
                holder["error"] = str(exc)

        thread = threading.Thread(target=target)
        thread.start()
        return thread, holder

    def test_pause_resume_snapshot_drain(self):
        supervisor = SessionSupervisor(_base(), round_delay=0.02)
        thread, holder = self._run_in_thread(supervisor)
        try:
            ok, detail = supervisor.control(ControlOp("pause"))
            assert ok and detail == "paused"
            assert supervisor.health()["state"] == "paused"
            frozen = supervisor.rounds_completed
            ok, detail = supervisor.control(ControlOp("snapshot"))
            assert ok
            snap = json.loads(detail)
            assert snap["round"] == supervisor.session.current_round
            assert supervisor.rounds_completed == frozen
            ok, detail = supervisor.control(ControlOp("resume"))
            assert ok and detail == "running"
            ok, detail = supervisor.control(ControlOp("drain"))
            assert ok
        finally:
            thread.join(timeout=30)
        assert not thread.is_alive()
        assert supervisor.state == "stopped"
        assert "result" in holder

    def test_live_op_failure_is_a_reply_not_a_crash(self):
        supervisor = SessionSupervisor(_base(), round_delay=0.02)
        thread, holder = self._run_in_thread(supervisor)
        try:
            ok, detail = supervisor.control(
                ControlOp("strategy", node_id=7, arg="not-a-strategy")
            )
            assert not ok and "unknown strategy" in detail
            ok, detail = supervisor.control(ControlOp("churn"))
            assert not ok and "needs a node id" in detail
        finally:
            supervisor.stop()
            thread.join(timeout=30)
        assert supervisor.state == "stopped"
        assert "result" in holder


class TestEventOrderDeterminism:
    def _event_log(self, policy):
        from repro.service.events import EventBus

        bus = EventBus()
        sub = bus.subscribe()
        spec = _base(
            policy=policy, node_strategies=((7, "free-rider"),)
        )
        SessionSupervisor(spec, bus=bus).run()
        events, dropped = sub.drain()
        assert dropped == 0
        return [(e.kind, e.round_no, e.data) for e in events]

    def test_stream_is_identical_under_serial_and_daemon(self):
        """The loopback daemon policy re-encodes every message over
        the real wire codec; the event stream must not notice."""
        serial = self._event_log(None)
        daemon = self._event_log("daemon")
        # The state events differ only in the scenario payload, which
        # is policy-independent too — require full equality.
        assert serial == daemon
        assert any(kind == "verdict" for kind, _, _ in serial)


class TestEarlyDrain:
    def test_drain_before_warmup_still_collects(self):
        supervisor = SessionSupervisor(
            _base(), schedule=(ControlOp("drain", after_round=0),)
        )
        result = supervisor.run()
        assert supervisor.state == "stopped"
        assert supervisor.rounds_completed == 1
        # The steady-state window clamps to the round that ran.
        assert result.spec.warmup_rounds == 0
        assert result.node_kbps

    def test_drain_before_any_round_yields_an_empty_result(self):
        supervisor = SessionSupervisor(
            _base(), schedule=(ControlOp("drain", after_round=-1),)
        )
        result = supervisor.run()
        assert supervisor.state == "stopped"
        assert supervisor.rounds_completed == 0
        assert result.node_kbps == {}
        assert result.verdicts == 0


class TestHealth:
    def test_health_shape_tracks_the_run(self):
        supervisor = SessionSupervisor(_base())
        health = supervisor.health()
        assert health["state"] == "init"
        assert health["nodes"] == 0
        result = supervisor.run()
        health = supervisor.health()
        assert health["state"] == "stopped"
        assert health["current_round"] == supervisor.spec.rounds
        assert health["total_rounds"] == supervisor.spec.rounds
        assert health["nodes"] == len(result.session.nodes) + 1
        assert health["restarts"] == 0
        assert health["subscribers"] == 0

    def test_state_vocabulary_is_pinned(self):
        assert STATES == (
            "init", "running", "paused", "draining", "stopped", "failed",
        )
