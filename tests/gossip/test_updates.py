"""Tests for updates, stores, source schedule and buffermaps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.homomorphic import fresh_hasher
from repro.gossip.buffermap import (
    HashedBuffermap,
    PlainBuffermap,
    buffermap_hash_count,
)
from repro.gossip.source import StreamSchedule
from repro.gossip.updates import Update, UpdateStore, content_integer


def make_update(uid, created=0, ttl=10, size=938):
    return Update(
        uid=uid,
        round_created=created,
        expiry_round=created + ttl,
        payload_bytes=size,
    )


class TestContentInteger:
    def test_deterministic(self):
        assert content_integer(5) == content_integer(5)

    def test_distinct_per_uid_and_session(self):
        assert content_integer(5) != content_integer(6)
        assert content_integer(5, session=1) != content_integer(5, session=2)

    def test_width_is_1024_bits(self):
        assert content_integer(123).bit_length() == 1024

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=50)
    def test_always_odd_and_wide(self, uid):
        c = content_integer(uid)
        assert c % 2 == 1
        assert c.bit_length() == 1024


class TestUpdate:
    def test_expiry_logic(self):
        u = make_update(1, created=0, ttl=10)
        assert not u.is_expired(10)
        assert u.is_expired(11)
        assert not u.expires_next_round(8)
        assert u.expires_next_round(9)
        assert u.expires_next_round(10)

    def test_content_matches_uid(self):
        u = make_update(7)
        assert u.content == content_integer(7)


class TestUpdateStore:
    def test_add_and_dedup(self):
        store = UpdateStore()
        u = make_update(1)
        assert store.add(u, round_no=0) is True
        assert store.add(u, round_no=1) is False
        assert len(store) == 1
        assert store.receipt_count(1) == 2
        assert store.arrival_round(1) == 0

    def test_received_in_round(self):
        store = UpdateStore()
        store.add(make_update(1), 0)
        store.add(make_update(2), 1)
        store.add(make_update(3), 1)
        got = {u.uid for u in store.received_in_round(1)}
        assert got == {2, 3}

    def test_recent_uids_window(self):
        store = UpdateStore()
        for rnd in range(6):
            store.add(make_update(rnd), rnd)
        assert store.recent_uids(current_round=5, depth=4) == {2, 3, 4, 5}

    def test_drop_expired(self):
        store = UpdateStore()
        store.add(make_update(1, created=0, ttl=2), 0)
        store.add(make_update(2, created=5, ttl=10), 5)
        dropped = store.drop_expired(current_round=3)
        assert dropped == 1
        assert 1 not in store
        assert 2 in store
        # Arrival history survives eviction (playback metrics need it).
        assert store.ever_received(1)
        assert store.arrival_round(1) == 0
        assert store.total_ever_received() == 2

    def test_bulk_add(self):
        store = UpdateStore()
        batch = [make_update(i) for i in range(3)]
        assert store.bulk_add(batch, 0) == 3
        assert store.bulk_add(batch, 1) == 0


class TestStreamSchedule:
    def test_rate_matches_over_time(self):
        # 300 Kbps at 938 B -> 39.97 chunks/round on average.
        sched = StreamSchedule(rate_kbps=300.0)
        total = sum(len(sched.release(r)) for r in range(100))
        expected = 300_000 * 100 / (938 * 8)
        assert abs(total - expected) <= 1

    def test_uids_are_sequential(self):
        sched = StreamSchedule(rate_kbps=80.0)
        first = sched.release(0)
        second = sched.release(1)
        uids = [u.uid for u in first + second]
        assert uids == list(range(len(uids)))

    def test_expiry_set_from_playout_delay(self):
        sched = StreamSchedule(rate_kbps=80.0, playout_delay_rounds=10)
        for u in sched.release(4):
            assert u.expiry_round == 14

    def test_validations(self):
        with pytest.raises(ValueError):
            StreamSchedule(rate_kbps=0)
        with pytest.raises(ValueError):
            StreamSchedule(rate_kbps=10, update_bytes=0)
        with pytest.raises(ValueError):
            StreamSchedule(rate_kbps=10, playout_delay_rounds=0)

    @given(st.floats(min_value=10, max_value=5000))
    @settings(max_examples=30)
    def test_release_rate_property(self, rate):
        sched = StreamSchedule(rate_kbps=rate)
        total = sum(len(sched.release(r)) for r in range(50))
        expected = rate * 1000 * 50 / (938 * 8)
        assert abs(total - expected) <= 1


class TestPlainBuffermap:
    def test_missing(self):
        bm = PlainBuffermap.from_store({1, 2})
        candidates = [make_update(1), make_update(3)]
        assert [u.uid for u in bm.missing(candidates)] == [3]
        assert len(bm) == 2


class TestHashedBuffermap:
    def test_filters_known_updates_without_revealing_ids(self):
        hasher = fresh_hasher(bits=128, seed=1)
        prime = 65537
        owned = [make_update(1), make_update(2)]
        bm = HashedBuffermap.build(
            hasher, (u.content for u in owned), prime
        )
        candidates = [make_update(2), make_update(3)]
        unknown = bm.filter_unknown(hasher, candidates, prime)
        assert [u.uid for u in unknown] == [3]

    def test_split_known(self):
        hasher = fresh_hasher(bits=128, seed=1)
        prime = 65537
        bm = HashedBuffermap.build(
            hasher, [make_update(1).content], prime
        )
        unknown, known = bm.split_known(
            hasher, [make_update(1), make_update(2)], prime
        )
        assert [u.uid for u in known] == [1]
        assert [u.uid for u in unknown] == [2]

    def test_wrong_prime_hides_membership(self):
        # A buffermap keyed by another link's prime matches nothing:
        # this is the unlinkability across hops.
        hasher = fresh_hasher(bits=128, seed=1)
        bm = HashedBuffermap.build(
            hasher, [make_update(1).content], 65537
        )
        unknown = bm.filter_unknown(hasher, [make_update(1)], 65539)
        assert [u.uid for u in unknown] == [1]


def test_buffermap_hash_count():
    owned = {0: {1, 2}, 1: {3}, 3: {4, 5, 6}}
    assert buffermap_hash_count(owned, current_round=3, depth=4) == 6
    assert buffermap_hash_count(owned, current_round=3, depth=1) == 3
    assert buffermap_hash_count({}, 3, 4) == 0
