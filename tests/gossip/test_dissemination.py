"""Integration tests: plain push gossip actually disseminates content."""


from repro.gossip.dissemination import (
    PlainGossipNode,
    PlainSourceNode,
    PushMessage,
)
from repro.gossip.source import StreamSchedule
from repro.membership.directory import Directory
from repro.membership.views import ViewProvider
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.rng import SeedSequence


def build_session(n=30, rate=80.0, fanout=3, seed=5, ttl=10):
    directory = Directory.of_size(n)
    views = ViewProvider(
        directory=directory,
        seeds=SeedSequence(seed),
        fanout=fanout,
        monitors_per_node=fanout,
    )
    network = Network()
    sim = Simulator(network=network)
    schedule = StreamSchedule(rate_kbps=rate, playout_delay_rounds=ttl)
    source = PlainSourceNode(0, network, views, schedule)
    sim.add_node(source)
    nodes = {}
    for node_id in directory.consumers():
        node = PlainGossipNode(node_id, network, views)
        nodes[node_id] = node
        sim.add_node(node)
    return sim, source, nodes


def test_most_nodes_receive_most_chunks():
    """Plain infect-and-die gossip delivers with high probability, not
    certainty — the paper's R1/R2 obligations exist precisely because
    probabilistic forwarding leaves gaps that selfishness widens."""
    sim, source, nodes = build_session(n=30, rate=80.0)
    sim.run(15)
    released = {u.uid for u in source.released if u.round_created <= 5}
    assert released, "source must have released content"
    delivered = sum(
        1
        for node in nodes.values()
        for uid in released
        if node.store.ever_received(uid)
    )
    coverage = delivered / (len(released) * len(nodes))
    assert coverage > 0.85


def test_dissemination_latency_is_logarithmic():
    sim, source, nodes = build_session(n=100, rate=8.0)
    sim.run(12)
    # A chunk released at round 0 reaches the infected subset within
    # ~log_f(N)+2 rounds; with f=3 and N=100 that is about 5-6 rounds.
    target = source.released[0]
    arrivals = [
        node.store.arrival_round(target.uid)
        for node in nodes.values()
        if node.store.ever_received(target.uid)
    ]
    assert len(arrivals) >= 0.8 * len(nodes)
    assert max(arrivals) <= 8


def test_each_node_forwards_each_update_exactly_once():
    sim, source, nodes = build_session(n=20, rate=8.0)
    pushes = []
    sim.network.add_tap(
        type(
            "Tap",
            (),
            {
                "observe": staticmethod(
                    lambda message, size: pushes.append(message)
                )
            },
        )()
    )
    sim.run(10)
    # Count how many times node 5 pushed uid 0 across all rounds.
    uid = source.released[0].uid
    sends = [
        m
        for m in pushes
        if isinstance(m, PushMessage)
        and m.sender == 5
        and any(u.uid == uid for u in m.updates)
    ]
    rounds = {m.round_no for m in sends}
    # Infect-and-die: all copies of uid are pushed in exactly one round.
    assert len(rounds) <= 1


def test_expired_updates_are_not_forwarded():
    sim, source, nodes = build_session(n=20, rate=8.0, ttl=2)
    sim.run(10)
    for node in nodes.values():
        node.store.drop_expired(sim.current_round)
        # After expiry cleanup only fresh updates remain.
        for uid in node.store.uids():
            update = node.store.get(uid)
            assert not update.is_expired(sim.current_round)


def test_delivery_ratio_reporting():
    sim, source, nodes = build_session(n=20, rate=20.0)
    sim.run(12)
    node = nodes[5]
    ratio = node.delivery_ratio(source.total_released())
    assert 0.5 < ratio <= 1.0
    assert node.delivery_ratio(0) == 1.0


def test_push_message_size_accounts_payload():
    from repro.sim.message import WireSizes
    from repro.gossip.updates import Update

    sizes = WireSizes()
    updates = tuple(
        Update(uid=i, round_created=0, expiry_round=9, payload_bytes=938)
        for i in range(3)
    )
    msg = PushMessage(sender=1, recipient=2, round_no=0, updates=updates)
    assert msg.size_bytes(sizes) == sizes.header + 3 * (938 + sizes.update_id)
