"""Wire-size tests: every PAG message prices its real content."""

import dataclasses


from repro.core.messages import (
    Accusation,
    Ack,
    AckCopy,
    AckRelay,
    Attestation,
    AttestationRelay,
    Confirm,
    InvestigateRequest,
    InvestigateResponse,
    KeyRequest,
    KeyResponse,
    MonitorBroadcast,
    MonitorProbe,
    Nack,
    ProbeAck,
    Serve,
    ServeEntry,
    SignedAck,
    SignedAttestation,
)
from repro.gossip.updates import Update
from repro.sim.message import WireSizes

SIZES = WireSizes()


def make_entry(uid=1, payload=True, ack_only=False, count=1):
    return ServeEntry(
        update=Update(uid=uid, round_created=0, expiry_round=9),
        count=count,
        has_payload=payload,
        ack_only=ack_only,
    )


def make_ack():
    return SignedAck(
        round_no=3,
        receiver=2,
        server=1,
        hash_total=12345,
        key_prime_count=3,
        signature=999,
    )


def make_attestation():
    return SignedAttestation(
        round_no=3,
        server=1,
        receiver=2,
        hash_forward=1,
        hash_ack_only=2,
        signature=7,
    )


class TestEntrySizes:
    def test_payload_entry(self):
        e = make_entry(payload=True)
        assert e.wire_bytes(SIZES) == 938 + SIZES.update_id + 2 + 1

    def test_id_only_entry(self):
        e = make_entry(payload=False)
        assert e.wire_bytes(SIZES) == SIZES.update_id + 2 + 1


class TestMessageSizes:
    def test_key_request(self):
        msg = KeyRequest(sender=1, recipient=2, round_no=0)
        assert msg.size_bytes(SIZES) == SIZES.header + SIZES.signature

    def test_key_response_scales_with_buffermap(self):
        small = KeyResponse(
            sender=2, recipient=1, round_no=0, prime=3,
            buffermap=frozenset({1, 2}),
        )
        large = KeyResponse(
            sender=2, recipient=1, round_no=0, prime=3,
            buffermap=frozenset(range(10)),
        )
        delta = large.size_bytes(SIZES) - small.size_bytes(SIZES)
        assert delta == 8 * SIZES.hash_value

    def test_serve_prices_key_product_by_prime_count(self):
        base = Serve(
            sender=1, recipient=2, round_no=0,
            key_prev=7, key_prime_count=1, entries=(make_entry(),),
        )
        wide = Serve(
            sender=1, recipient=2, round_no=0,
            key_prev=7, key_prime_count=4, entries=(make_entry(),),
        )
        assert wide.size_bytes(SIZES) - base.size_bytes(SIZES) == (
            3 * SIZES.prime
        )

    def test_serve_entry_filters(self):
        serve = Serve(
            sender=1, recipient=2, round_no=0,
            entries=(make_entry(1), make_entry(2, ack_only=True)),
        )
        assert [e.update.uid for e in serve.forward_entries()] == [1]
        assert [e.update.uid for e in serve.ack_only_entries()] == [2]

    def test_attestation_and_ack(self):
        att = Attestation(
            sender=1, recipient=2, round_no=0,
            attestation=make_attestation(),
        )
        assert att.size_bytes(SIZES) == SIZES.header + (
            2 * SIZES.hash_value + SIZES.signature + 12
        )
        ack = Ack(sender=2, recipient=1, round_no=0, ack=make_ack())
        assert ack.size_bytes(SIZES) == SIZES.header + (
            SIZES.hash_value + SIZES.signature + 12
        )

    def test_monitor_messages(self):
        copy = AckCopy(sender=2, recipient=5, round_no=0, ack=make_ack())
        assert copy.size_bytes(SIZES) > SIZES.header
        relay = AttestationRelay(
            sender=2, recipient=5, round_no=0,
            attestation=make_attestation(),
            cofactor=77, cofactor_prime_count=2,
        )
        # Cofactor priced at 2 primes.
        base = AttestationRelay(
            sender=2, recipient=5, round_no=0,
            attestation=make_attestation(),
            cofactor=1, cofactor_prime_count=0,
        )
        assert relay.size_bytes(SIZES) - base.size_bytes(SIZES) == (
            2 * SIZES.prime
        )
        broadcast = MonitorBroadcast(
            sender=5, recipient=6, round_no=0,
            monitored=2, predecessor=1,
            lifted_forward=1, lifted_ack_only=1, ack=make_ack(),
        )
        assert broadcast.size_bytes(SIZES) > 2 * SIZES.hash_value
        ack_relay = AckRelay(
            sender=5, recipient=8, round_no=0, server=1, ack=make_ack()
        )
        assert ack_relay.size_bytes(SIZES) > SIZES.hash_value

    def test_accusation_carries_payload(self):
        acc_empty = Accusation(
            sender=1, recipient=5, round_no=1, accused=2,
            exchange_round=0, entries=(),
        )
        acc_full = Accusation(
            sender=1, recipient=5, round_no=1, accused=2,
            exchange_round=0, entries=(make_entry(),),
        )
        delta = acc_full.size_bytes(SIZES) - acc_empty.size_bytes(SIZES)
        assert delta == make_entry().wire_bytes(SIZES)

    def test_probe_and_probe_ack(self):
        probe = MonitorProbe(
            sender=5, recipient=2, round_no=1, accuser=1,
            exchange_round=0, entries=(make_entry(),),
        )
        assert probe.size_bytes(SIZES) > 938
        pa = ProbeAck(sender=2, recipient=5, round_no=1, ack=make_ack())
        assert pa.size_bytes(SIZES) > SIZES.hash_value

    def test_confirm_nack_investigations(self):
        confirm = Confirm(sender=5, recipient=8, round_no=1, ack=make_ack())
        nack = Nack(
            sender=5, recipient=8, round_no=1,
            accused=2, accuser=1, exchange_round=0,
        )
        assert confirm.size_bytes(SIZES) > nack.size_bytes(SIZES) - 64
        req = InvestigateRequest(
            sender=8, recipient=1, round_no=2, successor=2, exchange_round=0
        )
        resp_with = InvestigateResponse(
            sender=1, recipient=8, round_no=2, successor=2,
            exchange_round=0, ack=make_ack(),
        )
        resp_without = InvestigateResponse(
            sender=1, recipient=8, round_no=2, successor=2,
            exchange_round=0, ack=None,
        )
        assert req.size_bytes(SIZES) >= SIZES.header + SIZES.signature
        assert resp_with.size_bytes(SIZES) > resp_without.size_bytes(SIZES)


class TestSignedPayloadDescriptions:
    def test_ack_desc_binds_all_fields(self):
        base = make_ack().payload_bytes_desc()
        for field, value in [
            ("round_no", 4), ("receiver", 9), ("server", 9),
            ("hash_total", 1),
        ]:
            changed = dataclasses.replace(
                make_ack(), **{field: value}
            ).payload_bytes_desc()
            assert changed != base, field

    def test_attestation_desc_binds_hashes(self):
        base = make_attestation().payload_bytes_desc()
        changed = dataclasses.replace(
            make_attestation(), hash_forward=42
        ).payload_bytes_desc()
        assert changed != base

    def test_hot_messages_are_slotted(self):
        """Hot-path messages must stay ``__dict__``-free (memory/speed)."""
        instances = [
            make_ack(),
            make_attestation(),
            make_entry(),
            KeyRequest(sender=1, recipient=2, round_no=0),
            Serve(sender=1, recipient=2, round_no=0),
        ]
        for instance in instances:
            assert not hasattr(instance, "__dict__"), type(instance)
