"""Tests for the session context and the verdict log."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accusations import FaultReason, Verdict, VerdictLog
from repro.core.config import PagConfig
from repro.core.context import PagContext
from repro.membership.directory import Directory


@pytest.fixture()
def context():
    return PagContext.build(
        PagConfig(), Directory.of_size(12, source_id=0)
    )


class TestPagContext:
    def test_build_wires_views_to_config(self, context):
        assert context.views.fanout == context.config.fanout
        assert len(context.views.monitors(3)) == (
            context.config.monitors_per_node
        )

    def test_modulus_is_composite_and_sized(self, context):
        bits = context.hasher.modulus.bit_length()
        assert bits <= context.config.sim_modulus_bits
        assert bits >= context.config.sim_modulus_bits - 8

    def test_source_identity(self, context):
        assert context.source_id == 0
        assert not context.is_monitored(0)
        assert context.is_monitored(5)

    def test_source_required(self):
        context = PagContext.build(
            PagConfig(), Directory.of_size(12, source_id=0)
        )
        context.directory.source_id = None
        with pytest.raises(ValueError):
            _ = context.source_id

    def test_prime_rngs_differ_per_node(self, context):
        a = context.prime_rng(1).random()
        b = context.prime_rng(2).random()
        assert a != b

    def test_counters(self, context):
        context.counters_encrypt()
        context.counters_decrypt()
        assert context.counters.encryptions == 1
        assert context.counters.decryptions == 1


verdicts_strategy = st.lists(
    st.builds(
        Verdict,
        node=st.integers(min_value=0, max_value=5),
        reason=st.sampled_from(list(FaultReason)),
        exchange_round=st.integers(min_value=0, max_value=4),
        detected_by=st.integers(min_value=0, max_value=5),
        evidence=st.just(""),
    ),
    max_size=40,
)


class TestVerdictLog:
    def test_dedup_by_node_reason_round(self):
        log = VerdictLog()
        v = Verdict(1, FaultReason.WRONG_FORWARD_SET, 3, detected_by=9)
        assert log.record(v)
        same_fault_other_monitor = Verdict(
            1, FaultReason.WRONG_FORWARD_SET, 3, detected_by=4
        )
        assert not log.record(same_fault_other_monitor)
        assert len(log) == 1

    def test_against_and_guilty(self):
        log = VerdictLog()
        log.record(Verdict(1, FaultReason.OMISSION_TO_SERVE, 0, 9))
        log.record(Verdict(2, FaultReason.REFUSED_RECEPTION, 1, 9))
        assert len(log.against(1)) == 1
        assert log.guilty_nodes() == {1, 2}

    @given(verdicts_strategy)
    @settings(max_examples=50)
    def test_log_properties(self, verdicts):
        log = VerdictLog()
        for v in verdicts:
            log.record(v)
        keys = {
            (v.node, v.reason, v.exchange_round) for v in verdicts
        }
        assert len(log) == len(keys)
        assert log.guilty_nodes() == {v.node for v in verdicts}
        # Iteration yields exactly the recorded verdicts.
        assert len(list(log)) == len(log)
