"""End-to-end tests of a PAG session with all-correct nodes."""

import pytest

from repro.core import PagConfig, PagSession
from repro.sim.trace import TraceRecorder


@pytest.fixture(scope="module")
def session():
    s = PagSession.create(24)
    tap = TraceRecorder()
    s.simulator.network.add_tap(tap)
    s.run(14)
    s._tap = tap
    return s


class TestHonestRun:
    def test_no_verdicts_against_correct_nodes(self, session):
        assert session.all_verdicts() == []

    def test_stream_is_watchable(self, session):
        assert session.mean_continuity() > 0.99

    def test_every_node_gets_every_due_chunk(self, session):
        for node_id in list(session.nodes)[:5]:
            report = session.playback_report(node_id)
            assert report.chunks_missing == 0

    def test_bandwidth_above_stream_rate(self, session):
        mean_down = session.mean_bandwidth_kbps(
            warmup_rounds=4, direction="down"
        )
        # A 300 Kbps stream cannot be received for less.
        assert mean_down > 300.0
        # And the PAG overhead stays within sane bounds (paper: ~3.5x
        # in deployment, ~7x in large simulations).
        assert mean_down < 300.0 * 10

    def test_all_exchange_message_kinds_flow(self, session):
        kinds = session._tap.kinds()
        for kind in [
            "key_request",
            "key_response",
            "serve",
            "attestation",
            "ack",
            "ack_copy",
            "attestation_relay",
            "monitor_broadcast",
            "ack_relay",
        ]:
            assert kinds[kind] > 0, kind

    def test_no_failure_path_traffic_in_honest_run(self, session):
        kinds = session._tap.kinds()
        for kind in ["accusation", "monitor_probe", "nack"]:
            assert kinds[kind] == 0, kind

    def test_crypto_operations_counted(self, session):
        report = session.crypto_report()
        assert report["signatures"] > 0
        assert report["homomorphic_hashes"] > 0
        assert report["prime_generations"] > 0
        assert report["encryptions"] > 0

    def test_signature_rate_matches_table1_formula(self, session):
        """The paper's constant: 33 signatures/s per node at f=fm=3."""
        from repro.analysis.costs import signatures_per_second

        report = session.crypto_report()
        # Count over consumers and rounds; source and warmup skew the
        # constant slightly, so allow a generous band.
        per_node_per_round = report["signatures"] / (
            len(session.nodes) * session.current_round
        )
        expected = signatures_per_second(3, 3)
        assert expected * 0.5 < per_node_per_round < expected * 1.5


class TestSessionConstruction:
    def test_default_config_uses_size_fanout(self):
        s = PagSession.create(12)
        assert s.context.config.fanout == 3

    def test_custom_config_respected(self):
        cfg = PagConfig(fanout=4, monitors_per_node=5)
        s = PagSession.create(30, config=cfg)
        assert s.context.config.fanout == 4
        assert len(s.context.views.monitors(3)) == 5

    def test_source_is_node_zero_and_unmonitored(self):
        s = PagSession.create(12)
        assert s.source.node_id == 0
        assert not s.context.is_monitored(0)

    def test_deterministic_given_seed(self):
        a = PagSession.create(12)
        a.run(6)
        b = PagSession.create(12)
        b.run(6)
        assert a.bandwidth_kbps() == b.bandwidth_kbps()

    def test_different_seeds_differ(self):
        a = PagSession.create(12, config=PagConfig(seed=1))
        a.run(6)
        b = PagSession.create(12, config=PagConfig(seed=2))
        b.run(6)
        assert a.bandwidth_kbps() != b.bandwidth_kbps()


class TestExpiration:
    def test_stores_are_bounded(self):
        s = PagSession.create(12)
        s.run(20)
        for node in s.nodes.values():
            # Payload buffer retains at most ~TTL rounds of chunks.
            ttl = s.context.config.playout_delay_rounds
            per_round = 300_000 / (938 * 8)
            assert len(node.store) <= per_round * (ttl + 2)

    def test_no_expired_chunk_is_ever_served(self):
        s = PagSession.create(12)
        tap = TraceRecorder(keep_messages=True)
        s.simulator.network.add_tap(tap)
        s.run(16)
        from repro.core.messages import Serve

        for message in tap.messages:
            if isinstance(message, Serve):
                for entry in message.entries:
                    assert not entry.update.is_expired(message.round_no)
