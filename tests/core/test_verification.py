"""Tests for the homomorphic bookkeeping helpers."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import ServeEntry
from repro.core.verification import (
    ack_hash,
    combine_lifted,
    entries_product,
    hash_entries,
    lift_attested,
    serve_hashes,
)
from repro.crypto.homomorphic import fresh_hasher
from repro.crypto.primes import generate_distinct_primes, product
from repro.gossip.updates import Update


def entry(uid, count=1, ack_only=False, payload=True):
    return ServeEntry(
        update=Update(uid=uid, round_created=0, expiry_round=10),
        count=count,
        has_payload=payload,
        ack_only=ack_only,
    )


@pytest.fixture()
def hasher():
    return fresh_hasher(bits=128, seed=3)


class TestEntriesProduct:
    def test_empty_is_one(self, hasher):
        assert entries_product(hasher, []) == 1

    def test_multiplicity_is_exponent(self, hasher):
        single = entries_product(hasher, [entry(1, count=1)])
        double = entries_product(hasher, [entry(1, count=2)])
        content = entry(1).update.content % hasher.modulus
        assert double == (single * content) % hasher.modulus

    def test_order_independent(self, hasher):
        a = entries_product(hasher, [entry(1), entry(2)])
        b = entries_product(hasher, [entry(2), entry(1)])
        assert a == b


class TestServeHashes:
    def test_splits_forward_and_ack_only(self, hasher):
        entries = [entry(1), entry(2, ack_only=True)]
        fwd, ack = serve_hashes(hasher, entries, 65537)
        assert fwd == hash_entries(hasher, [entries[0]], 65537)
        assert ack == hash_entries(hasher, [entries[1]], 65537)

    def test_empty_lists_hash_to_identity(self, hasher):
        fwd, ack = serve_hashes(hasher, [], 65537)
        assert fwd == 1
        assert ack == 1


class TestLiftAndCombine:
    def test_lift_is_rekey(self, hasher):
        h = hash_entries(hasher, [entry(1)], 101)
        assert lift_attested(hasher, h, 103) == hash_entries(
            hasher, [entry(1)], 101 * 103
        )

    def test_lift_identity_stays_identity(self, hasher):
        assert lift_attested(hasher, 1, 99991) == 1

    def test_monitor_pipeline_equals_direct_hash(self, hasher):
        """The full section V-C pipeline: per-predecessor attestations,
        lifted by cofactors, combined — must equal the successor's ack
        over the union under the round key."""
        rng = random.Random(7)
        p1, p2, p3 = generate_distinct_primes(3, 32, rng)
        s1 = [entry(1, count=1), entry(2, count=2)]
        s2 = [entry(3, count=1)]
        s3 = [entry(4, count=3)]
        key = p1 * p2 * p3
        lifted = [
            lift_attested(hasher, hash_entries(hasher, s1, p1), p2 * p3),
            lift_attested(hasher, hash_entries(hasher, s2, p2), p1 * p3),
            lift_attested(hasher, hash_entries(hasher, s3, p3), p1 * p2),
        ]
        obligation = combine_lifted(hasher, lifted)
        successor_ack = ack_hash(hasher, s1 + s2 + s3, key)
        assert obligation == successor_ack

    def test_tampered_set_breaks_the_pipeline(self, hasher):
        rng = random.Random(8)
        p1, p2 = generate_distinct_primes(2, 32, rng)
        s1, s2 = [entry(1)], [entry(2)]
        lifted = [
            lift_attested(hasher, hash_entries(hasher, s1, p1), p2),
            lift_attested(hasher, hash_entries(hasher, s2, p2), p1),
        ]
        obligation = combine_lifted(hasher, lifted)
        # Forwarding a different set cannot match.
        forged = ack_hash(hasher, [entry(1), entry(9)], p1 * p2)
        assert obligation != forged


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=50),
            st.integers(min_value=1, max_value=4),
        ),
        min_size=1,
        max_size=6,
        unique_by=lambda t: t[0],
    ),
    st.integers(min_value=2, max_value=5),
    st.data(),
)
@settings(max_examples=30, deadline=None)
def test_pipeline_property(update_specs, n_preds, data):
    """Arbitrary update sets split across arbitrary predecessors still
    satisfy the verification equation."""
    hasher = fresh_hasher(bits=128, seed=11)
    rng = random.Random(data.draw(st.integers(0, 2**32)))
    primes = generate_distinct_primes(n_preds, 32, rng)
    entries = [entry(uid, count=c) for uid, c in update_specs]
    # Partition entries across predecessors.
    per_pred = [[] for _ in range(n_preds)]
    for idx, e in enumerate(entries):
        per_pred[idx % n_preds].append(e)
    key = product(primes)
    lifted = []
    for i, batch in enumerate(per_pred):
        cofactor = product(p for j, p in enumerate(primes) if j != i)
        lifted.append(
            lift_attested(
                hasher, hash_entries(hasher, batch, primes[i]), cofactor
            )
        )
    assert combine_lifted(hasher, lifted) == ack_hash(hasher, entries, key)


class TestBatchVerifier:
    """The batched obligation fold: same product, same tallies."""

    def _lift_workload(self, hasher, rng, k=4):
        """k (attested hash, cofactor) pairs shaped like one round."""
        primes = generate_distinct_primes(k, 32, rng)
        key = product(primes)
        pairs = []
        for _i, p in enumerate(primes):
            attested = hasher.hash(rng.getrandbits(200) + 2, p)
            pairs.append((attested, key // p))
        return pairs

    def test_fold_matches_per_pair_lifting(self):
        from repro.core.verification import BatchVerifier

        rng = random.Random(21)
        batched = fresh_hasher(bits=128, seed=21)
        unbatched = fresh_hasher(bits=128, seed=21)
        pairs = self._lift_workload(batched, rng)
        self._lift_workload(unbatched, random.Random(21))
        verifier = BatchVerifier(batched)
        for attested, cofactor in pairs:
            verifier.add(attested, cofactor)
        reference = combine_lifted(
            unbatched,
            [lift_attested(unbatched, h, c) for h, c in pairs],
        )
        assert verifier.fold() == reference
        assert verifier.verify(reference)
        assert not verifier.verify(reference + 1)
        # Identical protocol-level tallies, different buckets.
        assert batched.operations == unbatched.operations
        assert batched.batched_lifts == len(pairs)

    def test_neutral_pairs_are_skipped_like_lift_attested(self):
        from repro.core.verification import BatchVerifier

        hasher = fresh_hasher(bits=128, seed=22)
        verifier = BatchVerifier(hasher)
        before = hasher.operations
        verifier.add(1 % hasher.modulus, 101)  # neutral: no-op, uncounted
        assert hasher.operations == before
        assert verifier.fold() == 1 % hasher.modulus

    def test_excluded_pairs_tally_but_do_not_fold(self):
        from repro.core.verification import BatchVerifier

        hasher = fresh_hasher(bits=128, seed=23)
        verifier = BatchVerifier(hasher)
        verifier.add(12345, 101)
        folded_only = verifier.fold()
        before = hasher.operations
        verifier.add(99999, 257, include=False)  # ack-only list
        assert hasher.operations == before + 1
        assert verifier.fold() == folded_only

    def test_prelifted_factors_multiply_in(self):
        from repro.core.verification import BatchVerifier

        hasher = fresh_hasher(bits=128, seed=24)
        verifier = BatchVerifier(hasher)
        verifier.add(4242, 101)
        verifier.add_lifted(7)  # a broadcast value: no tally, one factor
        expected = pow(4242, 101, hasher.modulus) * 7 % hasher.modulus
        assert verifier.fold() == expected
        assert len(verifier) == 2
        assert verifier.pending_pairs == 1

    def test_fold_memo_invalidated_by_accumulation(self):
        from repro.core.verification import BatchVerifier

        hasher = fresh_hasher(bits=128, seed=25)
        verifier = BatchVerifier(hasher)
        verifier.add(333, 101)
        first = verifier.fold()
        assert verifier.fold() == first  # memoised
        verifier.add(555, 257)
        assert verifier.fold() == (
            first * pow(555, 257, hasher.modulus) % hasher.modulus
        )

    def test_nonpositive_exponent_rejected(self):
        from repro.core.verification import BatchVerifier

        hasher = fresh_hasher(bits=128, seed=26)
        verifier = BatchVerifier(hasher)
        with pytest.raises(ValueError, match="positive"):
            verifier.add(5, 0)
