"""Section V-B monitor cross-checks: catching lying monitors.

"To check that monitors correctly compute and forward the hashes of
updates, nodes can compute this value and send it to their monitors.
Monitors are then able to check each other's correctness."
"""


from repro.adversary.selfish import LyingMonitor
from repro.core import FaultReason, PagConfig, PagSession


def run_with_liar(cross_checks: bool, n=20, rounds=12, seed=20160627):
    config = PagConfig(monitor_cross_checks=cross_checks, seed=seed)
    # Make some node a lying monitor; pick one that actually monitors
    # someone (all consumers do).
    session = PagSession.create(
        n, config=config, behaviors={6: LyingMonitor()}
    )
    session.run(rounds)
    return session


def test_honest_run_with_cross_checks_is_clean():
    config = PagConfig(monitor_cross_checks=True)
    session = PagSession.create(16, config=config)
    session.run(10)
    assert session.all_verdicts() == []
    assert session.mean_continuity() > 0.99


def test_cross_checks_convict_the_lying_monitor():
    session = run_with_liar(cross_checks=True)
    verdicts = session.all_verdicts()
    liar_verdicts = [
        v
        for v in verdicts
        if v.node == 6 and v.reason is FaultReason.MONITOR_MISBEHAVIOR
    ]
    assert liar_verdicts, "the lying monitor escaped"
    # And nobody it monitored was framed.
    framed = [
        v
        for v in verdicts
        if v.reason is FaultReason.WRONG_FORWARD_SET and v.node != 6
    ]
    assert not framed, f"honest nodes framed: {framed}"


def test_without_cross_checks_the_liar_can_frame():
    """The ablation that shows why the mechanism exists: without the
    self-checks, the corrupted broadcasts poison the other monitors'
    obligations and an honest node gets convicted."""
    session = run_with_liar(cross_checks=False)
    victims = {
        v.node
        for v in session.all_verdicts()
        if v.reason is FaultReason.WRONG_FORWARD_SET
    }
    monitored_by_liar = set(session.context.views.monitored_by(6))
    assert victims & monitored_by_liar, (
        "expected the liar's victims to be framed without cross-checks"
    )


def test_cross_checks_cost_is_modest():
    plain = PagSession.create(16, config=PagConfig())
    plain.run(10)
    checked = PagSession.create(
        16, config=PagConfig(monitor_cross_checks=True)
    )
    checked.run(10)
    base = plain.mean_bandwidth_kbps(3, direction="down")
    with_checks = checked.mean_bandwidth_kbps(3, direction="down")
    assert with_checks > base  # the messages are real
    assert with_checks / base < 1.25  # ...and small
