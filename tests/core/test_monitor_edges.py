"""White-box edge cases for the monitor engine and node handlers:
forgeries, duplicates, out-of-order and malformed traffic must never
corrupt obligations or produce convictions without evidence.
"""

import pytest

from repro.core.config import PagConfig
from repro.core.context import PagContext
from repro.core.messages import (
    Ack,
    AckCopy,
    Attestation,
    AttestationRelay,
    KeyRequest,
    KeyResponse,
    MonitorBroadcast,
    ProbeAck,
    Serve,
    ServeEntry,
    SignedAck,
    SignedAttestation,
)
from repro.core.monitor import MonitorEngine
from repro.core.node import PagNode
from repro.gossip.updates import Update
from repro.membership.directory import Directory
from repro.sim.engine import Simulator
from repro.sim.network import Network


@pytest.fixture()
def rig():
    """A tiny wired session: context, network, and raw nodes."""
    config = PagConfig(fanout=3, monitors_per_node=3)
    directory = Directory.of_size(10, source_id=0)
    context = PagContext.build(config, directory)
    network = Network()
    sim = Simulator(network=network)
    nodes = {}
    for node_id in range(1, 10):
        nodes[node_id] = PagNode(node_id, network, context)
        sim.add_node(nodes[node_id])
    return config, context, network, sim, nodes


def signed_ack(context, receiver, server, round_no=1, hash_total=5):
    unsigned = SignedAck(
        round_no=round_no,
        receiver=receiver,
        server=server,
        hash_total=hash_total,
        key_prime_count=1,
        signature=0,
    )
    import dataclasses

    return dataclasses.replace(
        unsigned,
        signature=context.signer.sign(
            receiver, unsigned.payload_bytes_desc()
        ),
    )


def signed_relay(context, attestation, declarer, monitor, cofactor=7):
    """An AttestationRelay whose outer signature the monitor accepts."""
    return AttestationRelay(
        sender=declarer,
        recipient=monitor,
        round_no=attestation.round_no,
        attestation=attestation,
        cofactor=cofactor,
        cofactor_prime_count=1,
        signature=context.signer.sign(
            declarer,
            (
                f"attrelay|{attestation.round_no}|{attestation.server}|"
                f"{cofactor}"
            ).encode(),
        ),
    )


def signed_attestation(context, server, receiver, round_no=1, fwd=3, ao=1):
    unsigned = SignedAttestation(
        round_no=round_no,
        server=server,
        receiver=receiver,
        hash_forward=fwd,
        hash_ack_only=ao,
        signature=0,
    )
    import dataclasses

    return dataclasses.replace(
        unsigned,
        signature=context.signer.sign(
            server, unsigned.payload_bytes_desc()
        ),
    )


class TestMonitorEngineEdges:
    def test_forged_attestation_is_ignored(self, rig):
        config, context, network, sim, nodes = rig
        engine = nodes[5].monitor
        forged = SignedAttestation(
            round_no=1, server=2, receiver=3,
            hash_forward=3, hash_ack_only=1, signature=12345,
        )
        engine.on_attestation_relay(
            AttestationRelay(
                sender=3, recipient=5, round_no=1,
                attestation=forged, cofactor=7, cofactor_prime_count=1,
            )
        )
        assert engine.obligation(3, 1) == 1 % context.hasher.modulus

    def test_pair_requires_both_messages(self, rig):
        config, context, network, sim, nodes = rig
        engine = nodes[5].monitor
        att = signed_attestation(context, server=2, receiver=3)
        engine.on_attestation_relay(
            signed_relay(context, att, declarer=3, monitor=5, cofactor=7)
        )
        # Attestation alone: nothing accumulated yet.
        assert engine.obligation(3, 1) == 1 % context.hasher.modulus
        engine.on_ack_copy(
            AckCopy(
                sender=3, recipient=5, round_no=1,
                ack=signed_ack(context, receiver=3, server=2),
            )
        )
        assert engine.obligation(3, 1) != 1 % context.hasher.modulus

    def test_tampered_cofactor_relay_is_rejected(self, rig):
        """The declarer's outer signature covers the cofactor: a relay
        whose cofactor was altered in flight must be discarded — lifting
        the attested hash with a wrong cofactor would produce a bogus
        obligation and falsely convict the server downstream."""
        config, context, network, sim, nodes = rig
        engine = nodes[5].monitor
        att = signed_attestation(context, server=2, receiver=3)
        relay = signed_relay(
            context, att, declarer=3, monitor=5, cofactor=7
        )
        relay.cofactor ^= 1  # in-flight mutation, signature unchanged
        engine.on_attestation_relay(relay)
        engine.on_ack_copy(
            AckCopy(
                sender=3, recipient=5, round_no=1,
                ack=signed_ack(context, receiver=3, server=2),
            )
        )
        # The tampered relay never paired up: no obligation, no
        # DeclarationAck, and the rejection is tallied.
        assert engine.obligation(3, 1) == 1 % context.hasher.modulus
        assert engine.counters["declarations_rejected"] == 1
        assert engine.counters["declarations_processed"] == 0

    def test_duplicate_broadcasts_do_not_double_count(self, rig):
        config, context, network, sim, nodes = rig
        engine = nodes[5].monitor
        ack = signed_ack(context, receiver=3, server=2)
        msg = MonitorBroadcast(
            sender=6, recipient=5, round_no=1,
            monitored=3, predecessor=2,
            lifted_forward=17, lifted_ack_only=1, ack=ack,
        )
        engine.on_monitor_broadcast(msg)
        first = engine.obligation(3, 1)
        engine.on_monitor_broadcast(msg)  # replay
        assert engine.obligation(3, 1) == first

    def test_obligation_empty_is_identity(self, rig):
        config, context, network, sim, nodes = rig
        assert nodes[4].monitor.obligation(7, 3) == (
            1 % context.hasher.modulus
        )

    def test_inactive_engine_ignores_everything(self, rig):
        config, context, network, sim, nodes = rig
        engine = MonitorEngine(
            host_id=5, context=context, send=lambda m: None, active=False
        )
        engine.on_monitor_broadcast(
            MonitorBroadcast(
                sender=6, recipient=5, round_no=1,
                monitored=3, predecessor=2,
                lifted_forward=17, lifted_ack_only=1,
                ack=signed_ack(context, receiver=3, server=2),
            )
        )
        assert engine.obligation(3, 1) == 1 % context.hasher.modulus
        engine.end_round(5)
        assert len(engine.verdicts) == 0

    def test_bogus_probe_ack_does_not_confirm(self, rig):
        config, context, network, sim, nodes = rig
        engine = nodes[5].monitor
        from repro.core.monitor import _PendingProbe

        entry = ServeEntry(
            update=Update(uid=1, round_created=0, expiry_round=9),
            count=1, has_payload=True, ack_only=False,
        )
        engine._pending_probes[(2, 3, 1)] = _PendingProbe(
            accused=3, accuser=2, exchange_round=1,
            entries=(entry,), key_prev=13, key_prime_count=1,
        )
        # Ack with the wrong hash: stays unanswered.
        engine.on_probe_ack(
            ProbeAck(
                sender=3, recipient=5, round_no=1,
                ack=signed_ack(
                    context, receiver=3, server=2, hash_total=999
                ),
            )
        )
        assert not engine._pending_probes[(2, 3, 1)].answered


class TestNodeEdges:
    def test_duplicate_key_request_is_idempotent(self, rig):
        config, context, network, sim, nodes = rig
        node = nodes[3]
        request = KeyRequest(sender=2, recipient=3, round_no=1)
        network.begin_round(1)
        node._on_key_request(request)
        prime_first = node.state.prime_for(1, 2)
        node._on_key_request(request)
        assert node.state.prime_for(1, 2) == prime_first
        # Only one KeyResponse was queued.
        responses = 0
        while True:
            msg = network.pop()
            if msg is None:
                break
            if isinstance(msg, KeyResponse):
                responses += 1
        assert responses == 1

    def test_serve_without_attestation_never_acked(self, rig):
        config, context, network, sim, nodes = rig
        node = nodes[3]
        network.begin_round(1)
        node._on_serve(
            Serve(
                sender=2, recipient=3, round_no=1,
                key_prev=13, key_prime_count=1, entries=(),
            )
        )
        assert (1, 2) in node.state.pending_serves
        assert (1, 2) not in node.state.acks_sent

    def test_attestation_with_wrong_hash_rejected(self, rig):
        config, context, network, sim, nodes = rig
        node = nodes[3]
        network.begin_round(1)
        # Issue a prime so the attestation check can run.
        node._on_key_request(KeyRequest(sender=2, recipient=3, round_no=1))
        while network.pop() is not None:
            pass
        entry = ServeEntry(
            update=Update(uid=1, round_created=0, expiry_round=9),
            count=1, has_payload=True, ack_only=False,
        )
        node._on_serve(
            Serve(
                sender=2, recipient=3, round_no=1,
                key_prev=13, key_prime_count=1, entries=(entry,),
            )
        )
        # The attested hashes do not match the serve: B must not ack.
        node._on_attestation(
            Attestation(
                sender=2, recipient=3, round_no=1,
                attestation=signed_attestation(
                    context, server=2, receiver=3, fwd=424242, ao=1
                ),
            )
        )
        assert (1, 2) not in node.state.acks_sent

    def test_wrong_ack_hash_not_accepted_by_server(self, rig):
        config, context, network, sim, nodes = rig
        node = nodes[2]
        from repro.core.state import OutgoingExchange

        node.state.outgoing[(1, 3)] = OutgoingExchange(
            successor=3, round_no=1, entries=(),
            key_prev=13, key_prime_count=1,
            expected_ack_hash=777, served=True,
        )
        node._on_ack(
            Ack(
                sender=3, recipient=2, round_no=1,
                ack=signed_ack(
                    context, receiver=3, server=2, hash_total=999
                ),
            )
        )
        assert not node.state.outgoing[(1, 3)].acknowledged

    def test_unknown_message_type_ignored(self, rig):
        config, context, network, sim, nodes = rig
        from repro.sim.message import Message

        nodes[3].on_message(Message(sender=2, recipient=3, round_no=1))
        # No crash, no state change.
        assert nodes[3].state.pending_serves == {}
