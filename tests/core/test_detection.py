"""Accountability tests: every selfish strategy is detected, correct
nodes are never convicted (no false positives), detection is prompt.

These are the executable form of the section VI-B analysis.
"""

import pytest

from repro.adversary.selfish import (
    ContactAvoider,
    DeclarationSkipper,
    FreeRider,
    PartialForwarder,
    SilentReceiver,
    StealthyFreeRider,
)
from repro.core import FaultReason, PagConfig, PagSession

N = 20
ROUNDS = 12
DEVIANT = 7

STRATEGIES = [
    (FreeRider(), {FaultReason.WRONG_FORWARD_SET}),
    (
        PartialForwarder(keep_fraction=0.5, seed=3),
        {FaultReason.WRONG_FORWARD_SET},
    ),
    (SilentReceiver(), {FaultReason.REFUSED_RECEPTION}),
    (DeclarationSkipper(), {FaultReason.OMITTED_DECLARATION}),
    (ContactAvoider(), {FaultReason.OMISSION_TO_SERVE}),
    (StealthyFreeRider(drop_every=4), {FaultReason.WRONG_FORWARD_SET}),
]


def run_with(behavior, n=N, rounds=ROUNDS, deviant=DEVIANT):
    session = PagSession.create(n, behaviors={deviant: behavior})
    session.run(rounds)
    return session


@pytest.mark.parametrize(
    "behavior,expected_reasons",
    STRATEGIES,
    ids=[type(b).__name__ for b, _ in STRATEGIES],
)
def test_deviant_is_convicted_and_nobody_else(behavior, expected_reasons):
    session = run_with(behavior)
    convicted = session.convicted_nodes()
    assert DEVIANT in convicted, "the deviant escaped detection"
    assert convicted == {DEVIANT}, (
        f"false positives: {convicted - {DEVIANT}}"
    )
    reasons = {
        v.reason for v in session.all_verdicts() if v.node == DEVIANT
    }
    assert reasons & expected_reasons, (
        f"expected one of {expected_reasons}, got {reasons}"
    )


def test_verdicts_carry_evidence():
    session = run_with(FreeRider())
    for verdict in session.all_verdicts():
        assert verdict.evidence
        assert verdict.detected_by in session.nodes
        assert verdict.exchange_round >= 0


def test_detection_is_prompt():
    """A free-rider is convicted within a few rounds of its first
    non-trivial serving obligation."""
    session = PagSession.create(N, behaviors={DEVIANT: FreeRider()})
    first_conviction = None
    for rnd in range(ROUNDS):
        session.run(1)
        if DEVIANT in session.convicted_nodes():
            first_conviction = rnd
            break
    assert first_conviction is not None
    assert first_conviction <= 6


def test_multiple_deviants_all_convicted():
    behaviors = {
        5: FreeRider(),
        9: DeclarationSkipper(),
        13: ContactAvoider(),
    }
    session = PagSession.create(24, behaviors=behaviors)
    session.run(14)
    convicted = session.convicted_nodes()
    assert set(behaviors) <= convicted
    assert convicted <= set(behaviors)


def test_independent_monitors_agree():
    """Every monitor of the deviant that issues a verdict issues the
    same (node, reason) conviction — proofs are objective."""
    session = run_with(FreeRider())
    per_monitor = {}
    for node in session.nodes.values():
        for verdict in node.verdicts():
            per_monitor.setdefault(node.node_id, set()).add(
                (verdict.node, verdict.reason)
            )
    assert per_monitor, "nobody convicted anything"
    all_claims = set().union(*per_monitor.values())
    assert all(
        claim[0] == DEVIANT for claim in all_claims
    ), f"conflicting claims: {all_claims}"


def test_detection_disabled_sees_nothing():
    config = PagConfig(detection_enabled=False)
    session = PagSession.create(
        N, config=config, behaviors={DEVIANT: FreeRider()}
    )
    session.run(ROUNDS)
    assert session.all_verdicts() == []


def test_free_rider_saves_upload_bandwidth():
    """The deviation must actually be profitable in bandwidth terms —
    otherwise detecting it proves nothing about incentives."""
    honest = PagSession.create(N)
    honest.run(ROUNDS)
    cheat = run_with(FreeRider())
    honest_up = honest.simulator.network.meter.node_kbps(
        DEVIANT, direction="up"
    )
    cheat_up = cheat.simulator.network.meter.node_kbps(
        DEVIANT, direction="up"
    )
    assert cheat_up < honest_up


def test_ghost_forwarding_ablation_still_detects():
    """With the literal S_A semantics (owned updates re-enter the
    obligation), detection still works and honest nodes stay clean."""
    config = PagConfig(forward_owned_ghosts=True, playout_delay_rounds=6)
    session = PagSession.create(
        16, config=config, behaviors={DEVIANT: FreeRider()}
    )
    session.run(10)
    assert DEVIANT in session.convicted_nodes()
    assert session.convicted_nodes() == {DEVIANT}
