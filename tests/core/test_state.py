"""Unit tests for PAG node state, config, and signing."""

import pytest

from repro.core.config import PagConfig
from repro.core.signing import RsaSigner, TokenSigner
from repro.core.state import ForwardSet, PagNodeState
from repro.crypto.keystore import KeyStore
from repro.gossip.updates import Update


def update(uid):
    return Update(uid=uid, round_created=0, expiry_round=9)


class TestForwardSet:
    def test_counts_accumulate(self):
        fs = ForwardSet()
        fs.add(update(1), 1)
        fs.add(update(1), 2)
        assert fs.counts[1] == 3
        assert len(fs) == 1

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            ForwardSet().add(update(1), 0)

    def test_items_sorted_by_uid(self):
        fs = ForwardSet()
        fs.add(update(5), 1)
        fs.add(update(2), 1)
        assert [u.uid for u, _ in fs.items()] == [2, 5]

    def test_is_empty(self):
        fs = ForwardSet()
        assert fs.is_empty()
        fs.add(update(1), 1)
        assert not fs.is_empty()


class TestPagNodeState:
    def test_prime_issue_and_lookup(self):
        state = PagNodeState()
        state.issue_prime(3, predecessor=7, prime=101)
        assert state.prime_for(3, 7) == 101
        assert state.prime_for(3, 8) is None
        assert state.prime_for(4, 7) is None

    def test_double_issue_rejected(self):
        state = PagNodeState()
        state.issue_prime(3, 7, 101)
        with pytest.raises(ValueError):
            state.issue_prime(3, 7, 103)

    def test_round_key_is_product(self):
        state = PagNodeState()
        state.issue_prime(3, 7, 101)
        state.issue_prime(3, 8, 103)
        key, count = state.round_key(3)
        assert key == 101 * 103
        assert count == 2

    def test_round_key_empty(self):
        assert PagNodeState().round_key(0) == (1, 0)

    def test_cofactor_excludes_one_link(self):
        state = PagNodeState()
        state.issue_prime(3, 7, 101)
        state.issue_prime(3, 8, 103)
        state.issue_prime(3, 9, 107)
        cofactor, count = state.cofactor(3, 8)
        assert cofactor == 101 * 107
        assert count == 2

    def test_prune(self):
        state = PagNodeState()
        state.issue_prime(1, 7, 101)
        state.issue_prime(5, 7, 103)
        state.forward_set(1).add(update(1), 1)
        state.prune_before(3)
        assert state.prime_for(1, 7) is None
        assert state.prime_for(5, 7) == 103
        assert 1 not in state.forward_sets


class TestPagConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PagConfig(fanout=0)
        with pytest.raises(ValueError):
            PagConfig(monitors_per_node=0)
        with pytest.raises(ValueError):
            PagConfig(buffermap_depth=0)
        with pytest.raises(ValueError):
            PagConfig(playout_delay_rounds=1)
        with pytest.raises(ValueError):
            PagConfig(sim_prime_bits=4)

    def test_for_system_size(self):
        assert PagConfig.for_system_size(1000).fanout == 3
        assert PagConfig.for_system_size(10**6).fanout == 6
        assert PagConfig.for_system_size(1000, fanout=5).fanout == 5

    def test_wire_byte_helpers(self):
        cfg = PagConfig()
        assert cfg.hash_bytes == 64
        assert cfg.prime_bytes == 64


class TestSigners:
    def test_token_signer_roundtrip(self):
        signer = TokenSigner()
        sig = signer.sign(5, b"payload")
        assert signer.verify(5, b"payload", sig)
        assert not signer.verify(5, b"other", sig)
        assert not signer.verify(6, b"payload", sig)
        assert signer.counters.signatures == 1
        assert signer.counters.verifications == 3

    def test_rsa_signer_roundtrip(self):
        import random

        signer = RsaSigner(
            keystore=KeyStore(key_bits=384, rng=random.Random(4))
        )
        sig = signer.sign(5, b"payload")
        assert signer.verify(5, b"payload", sig)
        assert not signer.verify(5, b"tampered", sig)
        assert not signer.verify(6, b"payload", sig)

    def test_signers_are_deterministic(self):
        assert TokenSigner().sign(1, b"x") == TokenSigner().sign(1, b"x")
