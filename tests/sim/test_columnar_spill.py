"""Unit coverage for the columnar on-disk round spill.

The population tier appends one dense int64 row per field per round and
reads windows back in bounded chunks; these tests pin the on-disk
layout (raw little-endian int64 rows), the buffered/flushed duality,
zero-padding past the written rounds, directory ownership, and every
argument-validation path.
"""

import os

import numpy as np
import pytest

from repro.sim.trace import ColumnarRoundSpill


def _rows(n_nodes, rnd, fields=("up", "down")):
    """Deterministic distinct rows per (round, field)."""
    return {
        name: np.arange(n_nodes, dtype=np.int64) * (rnd + 1)
        + (100 * idx)
        for idx, name in enumerate(fields)
    }


def test_round_trip_and_window_sum(tmp_path):
    spill = ColumnarRoundSpill(5, directory=str(tmp_path))
    for rnd in range(7):
        spill.append_round(_rows(5, rnd))
    assert spill.rounds_written == 7
    for rnd in range(7):
        expected = _rows(5, rnd)
        for field in ("up", "down"):
            np.testing.assert_array_equal(
                spill.read_round(field, rnd), expected[field]
            )
    # Window sum equals the sum of the read-back rows.
    manual = sum(_rows(5, rnd)["down"] for rnd in range(2, 6))
    np.testing.assert_array_equal(
        spill.window_sum("down", 2, 5), manual
    )
    spill.close()


def test_buffered_rows_are_readable_before_flush(tmp_path):
    spill = ColumnarRoundSpill(
        3, directory=str(tmp_path), buffer_rounds=10
    )
    spill.append_round(_rows(3, 0))
    spill.append_round(_rows(3, 1))
    # Nothing has hit the disk yet, but reads must still see the rows
    # (read paths flush first).
    assert spill.rounds_written == 2
    np.testing.assert_array_equal(
        spill.read_round("up", 1), _rows(3, 1)["up"]
    )
    assert spill.bytes_on_disk() == 2 * 3 * 8 * 2  # rounds*nodes*8*fields
    spill.close()


def test_auto_flush_at_buffer_rounds(tmp_path):
    spill = ColumnarRoundSpill(
        4, directory=str(tmp_path), buffer_rounds=2
    )
    spill.append_round(_rows(4, 0))
    assert os.path.getsize(tmp_path / "up.i64") == 0
    spill.append_round(_rows(4, 1))
    # Second append crossed the buffer threshold: both rounds on disk.
    assert os.path.getsize(tmp_path / "up.i64") == 2 * 4 * 8
    spill.close()


def test_window_sum_zero_pads_past_written_rounds(tmp_path):
    spill = ColumnarRoundSpill(3, directory=str(tmp_path))
    spill.append_round({"up": [1, 2, 3], "down": [4, 5, 6]})
    spill.append_round({"up": [10, 20, 30], "down": [40, 50, 60]})
    # Window extends far past the data: missing rounds contribute zero,
    # matching BandwidthMeter's padded-series semantics.
    np.testing.assert_array_equal(
        spill.window_sum("up", 0, 99), np.array([11, 22, 33])
    )
    # Window entirely past the data sums to zero.
    np.testing.assert_array_equal(
        spill.window_sum("up", 50, 99), np.zeros(3, dtype=np.int64)
    )
    spill.close()


def test_window_sum_streams_chunked(tmp_path):
    # More rounds than _CHUNK_ROUNDS forces the chunked path.
    n_rounds = ColumnarRoundSpill._CHUNK_ROUNDS * 2 + 3
    spill = ColumnarRoundSpill(2, directory=str(tmp_path))
    for rnd in range(n_rounds):
        spill.append_round(
            {"up": [rnd, 2 * rnd], "down": [0, 0]}
        )
    total = spill.window_sum("up", 0, n_rounds - 1)
    s = n_rounds * (n_rounds - 1) // 2
    np.testing.assert_array_equal(total, np.array([s, 2 * s]))
    spill.close()


def test_reused_directory_truncates_stale_files(tmp_path):
    first = ColumnarRoundSpill(2, directory=str(tmp_path))
    first.append_round({"up": [1, 1], "down": [2, 2]})
    first.flush()
    # A user-supplied directory is kept on close, files included.
    first.close()
    assert os.path.getsize(tmp_path / "up.i64") == 2 * 8
    # A new spill over the same directory must not inherit those rows.
    second = ColumnarRoundSpill(2, directory=str(tmp_path))
    assert second.rounds_written == 0
    assert os.path.getsize(tmp_path / "up.i64") == 0
    second.close()


def test_owned_tempdir_is_removed_on_close():
    spill = ColumnarRoundSpill(2)
    directory = spill.directory
    spill.append_round({"up": [1, 2], "down": [3, 4]})
    assert os.path.isdir(directory)
    spill.close()
    assert not os.path.exists(directory)
    # close() is idempotent.
    spill.close()


def test_append_after_close_raises(tmp_path):
    spill = ColumnarRoundSpill(2, directory=str(tmp_path))
    spill.close()
    with pytest.raises(RuntimeError, match="closed"):
        spill.append_round({"up": [1, 2], "down": [3, 4]})


@pytest.mark.parametrize(
    "kwargs, message",
    [
        (dict(n_nodes=0), "non-empty node universe"),
        (dict(n_nodes=3, fields=()), "at least one field"),
        (dict(n_nodes=3, buffer_rounds=0), "at least one round"),
    ],
)
def test_constructor_validation(tmp_path, kwargs, message):
    kwargs.setdefault("directory", str(tmp_path))
    with pytest.raises(ValueError, match=message):
        ColumnarRoundSpill(**kwargs)


def test_append_validates_fields_and_shape(tmp_path):
    spill = ColumnarRoundSpill(3, directory=str(tmp_path))
    with pytest.raises(ValueError, match="exactly"):
        spill.append_round({"up": [1, 2, 3]})  # missing "down"
    with pytest.raises(ValueError, match="exactly"):
        spill.append_round(
            {"up": [1, 2, 3], "down": [1, 2, 3], "mon": [1, 2, 3]}
        )
    with pytest.raises(ValueError, match="shape"):
        spill.append_round({"up": [1, 2], "down": [1, 2, 3]})
    # A failed append stages nothing.
    assert spill.rounds_written == 0
    spill.close()


def test_read_validation(tmp_path):
    spill = ColumnarRoundSpill(2, directory=str(tmp_path))
    spill.append_round({"up": [1, 2], "down": [3, 4]})
    with pytest.raises(ValueError, match="unknown spill field"):
        spill.read_round("sideways", 0)
    with pytest.raises(ValueError, match="outside"):
        spill.read_round("up", 1)
    with pytest.raises(ValueError, match="outside"):
        spill.read_round("up", -1)
    with pytest.raises(ValueError, match="non-negative"):
        spill.window_sum("up", -1, 3)
    with pytest.raises(ValueError, match="inverted"):
        spill.window_sum("up", 3, 2)
    spill.close()


def test_on_disk_layout_is_little_endian_int64(tmp_path):
    spill = ColumnarRoundSpill(2, directory=str(tmp_path))
    spill.append_round({"up": [1, 258], "down": [0, 0]})
    spill.flush()
    raw = (tmp_path / "up.i64").read_bytes()
    assert raw == np.array([1, 258], dtype="<i8").tobytes()
    spill.close()


def test_reads_on_closed_spill_raise_explicitly(tmp_path):
    """A closed spill's files are gone; every read path must say so
    instead of surfacing a FileNotFoundError from whichever file it
    opened first."""
    spill = ColumnarRoundSpill(2, directory=str(tmp_path))
    spill.append_round({"up": [1, 2], "down": [3, 4]})
    spill.close()
    with pytest.raises(RuntimeError, match="spill is closed"):
        spill.read_round("up", 0)
    with pytest.raises(RuntimeError, match="spill is closed"):
        spill.window_sum("up", 0, 0)
    with pytest.raises(RuntimeError, match="spill is closed"):
        spill.bytes_on_disk()


def test_context_manager_closes_and_removes_owned_dir():
    with ColumnarRoundSpill(2) as spill:
        directory = spill.directory
        spill.append_round({"up": [1, 2], "down": [3, 4]})
        assert spill.window_sum("up", 0, 0).tolist() == [1, 2]
    assert not os.path.exists(directory)
    with pytest.raises(RuntimeError, match="spill is closed"):
        spill.read_round("up", 0)


def test_context_manager_closes_on_error_too():
    directory = None
    with pytest.raises(ValueError, match="shape"):
        with ColumnarRoundSpill(2) as spill:
            directory = spill.directory
            spill.append_round({"up": [1], "down": [2]})
    assert not os.path.exists(directory)
