"""Vectorised meter parity: the matrix path against the columnar pass.

The shared numpy (node × round) matrix behind
:meth:`BandwidthMeter.all_node_kbps`, :meth:`BandwidthMeter.snapshot`
and :func:`cdf_points` is an execution strategy, not a different meter:
these Hypothesis properties hold the two paths to bit-identical outputs
over random traffic, windows, directions and shard merges, and pin the
fallback behaviours (no numpy, int64 overflow) the matrix must degrade
through.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.metrics import BandwidthMeter, cdf_points

RECORDS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=11),   # sender
        st.integers(min_value=0, max_value=11),   # recipient
        st.integers(min_value=0, max_value=50_000),  # size
        st.integers(min_value=0, max_value=14),   # round
    ),
    min_size=0,
    max_size=120,
)


def _pair_of_meters(records):
    vectorized = BandwidthMeter()
    columnar = BandwidthMeter(vectorize=False)
    for sender, recipient, size, rnd in records:
        vectorized.record(sender, recipient, size, rnd)
        columnar.record(sender, recipient, size, rnd)
    return vectorized, columnar


@settings(max_examples=60, deadline=None)
@given(
    records=RECORDS,
    first=st.integers(min_value=0, max_value=14),
    span=st.integers(min_value=0, max_value=14),
    direction=st.sampled_from(["both", "up", "down"]),
)
def test_all_node_kbps_matches_columnar(records, first, span, direction):
    vectorized, columnar = _pair_of_meters(records)
    nodes = list(range(14))  # includes ids the meter never saw
    last = first + span
    expected = columnar.all_node_kbps(
        nodes, first_round=first, last_round=last, direction=direction
    )
    observed = vectorized.all_node_kbps(
        nodes, first_round=first, last_round=last, direction=direction
    )
    assert observed == expected
    # Bitwise, not just numerically, equal.
    for node in nodes:
        assert math.copysign(1.0, observed[node]) == math.copysign(
            1.0, expected[node]
        )


@settings(max_examples=60, deadline=None)
@given(records=RECORDS)
def test_snapshot_matches_columnar(records):
    vectorized, columnar = _pair_of_meters(records)
    assert vectorized.snapshot() == columnar.snapshot()


@settings(max_examples=40, deadline=None)
@given(
    records=RECORDS,
    shards=st.integers(min_value=1, max_value=5),
)
def test_sharded_merge_parity(records, shards):
    """Per-shard meters merged in shard order agree with the reference
    on both paths, and the merge invalidates the matrix cache."""
    reference = BandwidthMeter(vectorize=False)
    merged = BandwidthMeter()
    parts = [BandwidthMeter() for _ in range(shards)]
    for sender, recipient, size, rnd in records:
        reference.record(sender, recipient, size, rnd)
        parts[recipient % shards].record(sender, recipient, size, rnd)
    for part in parts:
        if part.rounds_seen:
            # Touch the aggregate path so the part builds its matrix
            # before merging — the merge must still be exact.
            part.all_node_kbps(list(range(12)), first_round=0)
        merged.merge_from(part)
    assert merged.snapshot() == reference.snapshot()
    if reference.rounds_seen:
        nodes = list(range(12))
        assert merged.all_node_kbps(nodes) == reference.all_node_kbps(nodes)


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.floats(
            min_value=0.0, max_value=1e9, allow_nan=False
        ),
        max_size=60,
    )
)
def test_cdf_points_vectorized_parity(values):
    assert cdf_points(values, vectorize=True) == cdf_points(
        values, vectorize=False
    )


def test_cdf_points_default_matches_both_arms():
    values = {1: 10.0, 2: 5.0, 3: 20.0}
    assert cdf_points(values) == cdf_points(values, vectorize=False)


def test_record_and_merge_invalidate_the_matrix_cache():
    meter = BandwidthMeter()
    meter.record(0, 1, 100, 0)
    before = meter.all_node_kbps([0, 1], direction="up")
    assert before[0] == pytest.approx(0.8)
    meter.record(0, 1, 100, 0)
    after = meter.all_node_kbps([0, 1], direction="up")
    assert after[0] == pytest.approx(1.6)
    other = BandwidthMeter()
    other.record(0, 2, 100, 1)
    meter.merge_from(other)
    plain = BandwidthMeter(vectorize=False)
    for _ in range(2):
        plain.record(0, 1, 100, 0)
    plain.record(0, 2, 100, 1)
    assert meter.snapshot() == plain.snapshot()


def test_int64_overflow_falls_back_to_columnar():
    huge = BandwidthMeter()
    plain = BandwidthMeter(vectorize=False)
    for meter in (huge, plain):
        meter.record(0, 1, 1 << 70, 0)
        meter.record(0, 1, 5, 1)
    assert huge._matrix() is None
    assert huge.snapshot() == plain.snapshot()
    assert huge.all_node_kbps([0, 1]) == plain.all_node_kbps([0, 1])


def test_sum_that_would_wrap_int64_falls_back_to_columnar():
    """Each record fits int64 but a window sum would wrap: the guard
    bounds sums by the cumulative per-node totals, so the matrix is
    refused and the columnar pass returns the exact value."""
    huge = BandwidthMeter()
    plain = BandwidthMeter(vectorize=False)
    for meter in (huge, plain):
        for _ in range(4):
            meter.record(0, 1, 1 << 62, 0)
    assert huge._matrix() is None
    observed = huge.all_node_kbps([0, 1], direction="both")
    assert observed == plain.all_node_kbps([0, 1], direction="both")
    assert observed[0] > 0  # not a wrapped negative


def test_vectorize_flag_pins_the_columnar_path():
    meter = BandwidthMeter(vectorize=False)
    meter.record(0, 1, 100, 0)
    assert meter._matrix() is None
    assert meter.all_node_kbps([0, 1], direction="up")[0] == pytest.approx(
        0.8
    )
