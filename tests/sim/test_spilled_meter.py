"""Spilled-meter parity and the int64-overflow columnar fallback.

Two contracts live here.  First, the :class:`SpilledMeter` docstring
promises that a spilled read of the same traffic is *bit-identical* to
an in-memory :class:`BandwidthMeter` read — integer window sums first,
one multiply by ``8.0 / 1000.0 / duration`` — and the Hypothesis suite
below holds it to that across random traffic, windows, directions and
node offsets.  Second, the in-memory meter's shared numpy matrix is
guarded against int64 overflow; when :meth:`BandwidthMeter.merge_from`
pushes a node's cumulative volume past ``2**63 - 1`` the matrix must
stand down and every reader must take the unbounded columnar path with
correct values.
"""

import numpy as np
import pytest

from repro.sim.metrics import BandwidthMeter, SpilledMeter, kbps
from repro.sim.trace import ColumnarRoundSpill

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


def _paired(n_nodes, n_rounds, traffic, node_offset=0):
    """Build a spill and an in-memory meter fed identical traffic.

    ``traffic`` is an (n_rounds, 2, n_nodes) nested list of byte rows
    (index 0 = up, 1 = down).  The in-memory meter has no "record a
    bare download" primitive, so the reference meter is fed through a
    sink/source node placed outside the metered universe and the
    comparison only reads the real nodes.
    """
    spill = ColumnarRoundSpill(n_nodes, buffer_rounds=3)
    meter = BandwidthMeter()
    sink = node_offset + n_nodes + 1_000_000
    for rnd, (up_row, down_row) in enumerate(traffic):
        spill.append_round({"up": up_row, "down": down_row})
        for local, size in enumerate(up_row):
            meter.record(node_offset + local, sink, size, rnd)
        for local, size in enumerate(down_row):
            meter.record(sink, node_offset + local, size, rnd)
    return spill, meter


@st.composite
def traffic_case(draw):
    n_nodes = draw(st.integers(min_value=1, max_value=6))
    n_rounds = draw(st.integers(min_value=1, max_value=9))
    sizes = st.integers(min_value=0, max_value=50_000)
    traffic = [
        [
            draw(
                st.lists(
                    sizes, min_size=n_nodes, max_size=n_nodes
                )
            )
            for _ in range(2)
        ]
        for _ in range(n_rounds)
    ]
    node_offset = draw(st.integers(min_value=0, max_value=200))
    first = draw(st.integers(min_value=0, max_value=n_rounds - 1))
    last = draw(st.integers(min_value=first, max_value=n_rounds + 2))
    direction = draw(st.sampled_from(["both", "up", "down"]))
    seconds = draw(st.sampled_from([1.0, 0.5, 2.0, 0.25]))
    return n_nodes, traffic, node_offset, first, last, direction, seconds


@given(traffic_case())
@settings(max_examples=60, deadline=None)
def test_spilled_reads_match_in_memory_meter_bitwise(case):
    n_nodes, traffic, offset, first, last, direction, seconds = case
    spill, meter = _paired(n_nodes, len(traffic), traffic, offset)
    try:
        spilled = SpilledMeter(spill, node_offset=offset)
        nodes = spilled.node_ids()
        assert nodes == [offset + i for i in range(n_nodes)]
        assert spilled.rounds_seen == len(traffic)
        for node in nodes:
            assert spilled.node_bytes(
                node, first, last, direction
            ) == meter.node_bytes(node, first, last, direction)
            assert spilled.node_kbps(
                node, seconds, first, last, direction
            ) == meter.node_kbps(node, seconds, first, last, direction)
        assert spilled.all_node_kbps(
            nodes, seconds, first, last, direction
        ) == meter.all_node_kbps(nodes, seconds, first, last, direction)
        assert spilled.mean_kbps(
            nodes, seconds, first, last, direction
        ) == meter.mean_kbps(nodes, seconds, first, last, direction)
        # The bulk vector behind the population CDF matches the
        # per-node dict reader value for value (same IEEE operations).
        vector = spilled.window_kbps_vector(
            seconds, first, last, direction
        )
        assert vector.tolist() == [
            spilled.all_node_kbps(
                nodes, seconds, first, last, direction
            )[node]
            for node in nodes
        ]
    finally:
        spill.close()


@given(traffic_case())
@settings(max_examples=30, deadline=None)
def test_spilled_default_window_matches_meter(case):
    n_nodes, traffic, offset, _first, _last, direction, seconds = case
    spill, meter = _paired(n_nodes, len(traffic), traffic, offset)
    try:
        spilled = SpilledMeter(spill, node_offset=offset)
        nodes = spilled.node_ids()
        assert spilled.all_node_kbps(
            nodes, seconds, direction=direction
        ) == meter.all_node_kbps(nodes, seconds, direction=direction)
    finally:
        spill.close()


def test_spilled_meter_validation():
    spill = ColumnarRoundSpill(2, fields=("up",))
    try:
        with pytest.raises(ValueError, match="lacks the 'down' field"):
            SpilledMeter(spill)
    finally:
        spill.close()
    spill = ColumnarRoundSpill(2)
    try:
        with pytest.raises(ValueError, match="negative"):
            SpilledMeter(spill, node_offset=-1)
        spilled = SpilledMeter(spill)
        spill.append_round({"up": [1, 2], "down": [3, 4]})
        with pytest.raises(ValueError, match="non-negative"):
            spilled.window_sums(first_round=-1)
        with pytest.raises(ValueError, match="inverted"):
            spilled.window_sums(first_round=3, last_round=1)
        with pytest.raises(ValueError, match="inverted"):
            spilled.window_kbps_vector(first_round=3, last_round=1)
        with pytest.raises(ValueError, match="unknown direction"):
            spilled.window_sums(direction="sideways")
        # Outside the plane universe: bytes are 0, dict reads are 0.0.
        assert spilled.node_bytes(99) == 0
        assert spilled.all_node_kbps([99]) == {99: 0.0}
    finally:
        spill.close()


def test_spilled_window_past_written_rounds_zero_pads():
    spill = ColumnarRoundSpill(2)
    try:
        spill.append_round({"up": [5, 7], "down": [11, 13]})
        spilled = SpilledMeter(spill)
        np.testing.assert_array_equal(
            spilled.window_sums(0, 10, "both"), np.array([16, 20])
        )
        # Fully-past window: sums are zero, rates are zero over the
        # requested duration (not an error — the window is valid).
        np.testing.assert_array_equal(
            spilled.window_sums(5, 9, "both"), np.zeros(2, np.int64)
        )
        assert spilled.node_kbps(0, 1.0, 5, 9) == 0.0
    finally:
        spill.close()


# ---------------------------------------------------------------------------
# int64-overflow columnar fallback, introduced via merge_from.
# ---------------------------------------------------------------------------

#: Just over half of int64: one shard is matrix-safe, two merged wrap.
_HALF_OVERFLOW = (1 << 62) + 1


def _shard(sizes_by_round, sender=0, recipient=1):
    meter = BandwidthMeter()
    for rnd, size in enumerate(sizes_by_round):
        meter.record(sender, recipient, size, rnd)
    return meter


def test_merge_from_overflow_trips_the_matrix_guard():
    shards = [_shard([_HALF_OVERFLOW, 3]) for _ in range(2)]
    for shard in shards:
        # Each shard alone fits int64: the matrix path is live.
        assert shard._matrix() is not None
    merged = BandwidthMeter()
    for shard in shards:
        merged.merge_from(shard)
    # The merged cumulative volume exceeds 2**63 - 1, so the shared
    # matrix stands down for good and readers take the columnar path.
    assert merged._matrix() is None
    assert merged._matrix_cache == "overflow"
    assert merged.totals[0].bytes_up == 2 * _HALF_OVERFLOW + 6
    assert merged.node_bytes(0, direction="up") == 2 * _HALF_OVERFLOW + 6
    assert merged.node_bytes(1, direction="down") == (
        2 * _HALF_OVERFLOW + 6
    )
    # Windowed reads stay exact (Python ints have no width limit).
    assert merged.node_bytes(0, 1, 1, "up") == 6
    expected = kbps(2 * _HALF_OVERFLOW + 6, 2.0)
    assert merged.all_node_kbps([0], direction="up") == {0: expected}
    assert merged.node_kbps(0, direction="up") == expected


def test_overflowed_meter_matches_columnar_reference():
    # The overflowed meter's readers must agree with an explicitly
    # non-vectorised meter fed the same traffic (the columnar
    # reference the matrix is defined against).
    sizes = [_HALF_OVERFLOW, 17, 0, 4096]
    merged = BandwidthMeter()
    merged.merge_from(_shard(sizes))
    merged.merge_from(_shard(sizes))
    reference = BandwidthMeter(vectorize=False)
    for rnd, size in enumerate(sizes):
        reference.record(0, 1, size, rnd)
        reference.record(0, 1, size, rnd)
    assert merged._matrix() is None
    for first, last in [(0, None), (1, 2), (0, 3), (2, 2)]:
        for direction in ("both", "up", "down"):
            assert merged.all_node_kbps(
                [0, 1], 1.0, first, last, direction
            ) == reference.all_node_kbps(
                [0, 1], 1.0, first, last, direction
            )
    assert merged.snapshot() == reference.snapshot()


def test_overflow_cache_clears_when_traffic_is_rewritten():
    meter = BandwidthMeter()
    meter.merge_from(_shard([_HALF_OVERFLOW]))
    meter.merge_from(_shard([_HALF_OVERFLOW]))
    assert meter._matrix() is None
    # A further merge invalidates the cached verdict; the guard then
    # re-evaluates (and trips again — volumes only grow).
    meter.merge_from(_shard([1]))
    assert meter._matrix_cache is None
    assert meter._matrix() is None
    assert meter._matrix_cache == "overflow"
