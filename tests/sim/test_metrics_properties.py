"""Property-based tests for the columnar bandwidth meter.

The parallel execution backend leans on two meter properties:

* ``merge_from`` is an exact fold — any partition of a traffic log into
  per-shard meters, merged in any order, equals the single meter that
  recorded everything directly (including rounds nobody touched and
  nodes that only ever appear in one shard);
* ``cdf_points`` is a pure function of the value multiset.

Hypothesis explores the partitions the hand-written tests cannot.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.sim.metrics import BandwidthMeter, cdf_points  # noqa: E402

#: One traffic event: sender, recipient, size, round.
events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=10, max_value=19),
        st.integers(min_value=0, max_value=5000),
        st.integers(min_value=0, max_value=12),
    ),
    max_size=60,
)


def _meter_of(recorded):
    meter = BandwidthMeter()
    for sender, recipient, size, rnd in recorded:
        meter.record(sender, recipient, size, rnd)
    return meter


@settings(max_examples=60, deadline=None)
@given(
    recorded=events,
    assignment=st.lists(st.integers(min_value=0, max_value=3), max_size=60),
    merge_order=st.permutations([0, 1, 2, 3]),
)
def test_any_sharding_merges_back_to_the_reference(
    recorded, assignment, merge_order
):
    """Partition events across 4 shard meters arbitrarily, merge in an
    arbitrary shard order: totals, series and rounds_seen must equal the
    single-meter reference byte for byte."""
    reference = _meter_of(recorded)
    shards = [BandwidthMeter() for _ in range(4)]
    for index, (sender, recipient, size, rnd) in enumerate(recorded):
        shard = assignment[index % len(assignment)] if assignment else 0
        shards[shard].record(sender, recipient, size, rnd)
    merged = BandwidthMeter()
    for shard in merge_order:
        merged.merge_from(shards[shard])
    assert merged.snapshot() == reference.snapshot()
    node_ids = sorted(
        {s for s, _, _, _ in recorded} | {r for _, r, _, _ in recorded}
    )
    if reference.rounds_seen:
        assert merged.all_node_kbps(node_ids) == reference.all_node_kbps(
            node_ids
        )


@settings(max_examples=30, deadline=None)
@given(recorded=events)
def test_merge_into_nonempty_meter_adds_exactly(recorded):
    """Merging onto a meter with prior traffic adds element-wise."""
    base_traffic = [(0, 10, 100, 0), (1, 11, 50, 2)]
    combined = _meter_of(base_traffic + recorded)
    target = _meter_of(base_traffic)
    target.merge_from(_meter_of(recorded))
    assert target.snapshot() == combined.snapshot()


def test_merge_from_empty_meters_and_empty_rounds():
    """Empty shards and gap rounds (nobody sent) are preserved."""
    reference = BandwidthMeter()
    reference.record(1, 2, 700, 0)
    reference.record(1, 2, 300, 5)  # rounds 1-4 are empty
    merged = BandwidthMeter()
    merged.merge_from(reference)
    merged.merge_from(BandwidthMeter())  # no-op
    assert merged.snapshot() == reference.snapshot()
    assert merged.node_series(1, "up") == [700, 0, 0, 0, 0, 300]
    assert merged.rounds_seen == 6


@settings(max_examples=40, deadline=None)
@given(
    first=st.integers(min_value=0, max_value=10),
    gap=st.integers(min_value=1, max_value=5),
)
def test_inverted_window_rejection_survives_merging(first, gap):
    """node_kbps/all_node_kbps refuse inverted windows on merged meters
    exactly as on directly-recorded ones."""
    meter = BandwidthMeter()
    shard = BandwidthMeter()
    shard.record(1, 2, 100, first + gap + 1)
    meter.merge_from(shard)
    with pytest.raises(ValueError, match="inverted round window"):
        meter.node_kbps(1, first_round=first + gap, last_round=first)
    with pytest.raises(ValueError, match="inverted round window"):
        meter.all_node_kbps([1, 2], first_round=first + gap, last_round=first)


@settings(max_examples=40, deadline=None)
@given(
    recorded=events,
    first=st.integers(min_value=0, max_value=10),
    gap=st.integers(min_value=1, max_value=5),
)
def test_every_window_reader_rejects_inverted_and_negative_windows(
    recorded, first, gap
):
    """Satellite regression: ``node_kbps`` validated windows but the
    byte reader feeding the CDF aggregation did not — an inverted window
    silently summed nothing and a negative ``first_round`` sliced from
    the *end* of the per-round columns.  All window readers now share
    one validator."""
    meter = _meter_of(recorded + [(0, 10, 100, first + gap + 1)])
    node_ids = sorted(
        {s for s, _, _, _ in recorded} | {r for _, r, _, _ in recorded} | {0}
    )
    for call in (
        lambda: meter.node_bytes(0, first_round=first + gap, last_round=first),
        lambda: meter.node_kbps(0, first_round=first + gap, last_round=first),
        lambda: meter.all_node_kbps(
            node_ids, first_round=first + gap, last_round=first
        ),
    ):
        with pytest.raises(ValueError, match="inverted round window"):
            call()
    for call in (
        lambda: meter.node_bytes(0, first_round=-first - 1),
        lambda: meter.node_kbps(0, first_round=-first - 1),
        lambda: meter.all_node_kbps(node_ids, first_round=-first - 1),
    ):
        with pytest.raises(ValueError, match="non-negative"):
            call()


@settings(max_examples=30, deadline=None)
@given(recorded=events, first=st.integers(min_value=0, max_value=14))
def test_valid_windows_still_agree_across_readers(recorded, first):
    """The added validation must not change any valid-window sum: bytes
    scaled by the window duration equal the kbps the aggregation (and
    the CDF built from it) reports."""
    meter = _meter_of(recorded)
    if meter.rounds_seen <= first:
        return
    node_ids = sorted(
        {s for s, _, _, _ in recorded} | {r for _, r, _, _ in recorded}
    )
    bulk = meter.all_node_kbps(node_ids, first_round=first)
    duration = meter.rounds_seen - first
    for node in node_ids:
        assert bulk[node] == pytest.approx(
            meter.node_bytes(node, first_round=first) * 8.0 / 1000.0
            / duration
        )
        assert bulk[node] == pytest.approx(
            meter.node_kbps(node, first_round=first)
        )
    assert cdf_points(bulk) == cdf_points(sorted(bulk.values()))


def test_empty_meter_defaults_preserved():
    """Default windows on an empty meter keep their seed semantics:
    byte readers return nothing, rate readers reject (no duration)."""
    meter = BandwidthMeter()
    assert meter.node_bytes(1) == 0
    assert meter.node_series(1) == []
    with pytest.raises(ValueError, match="inverted round window"):
        meter.node_kbps(1)


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.floats(
            min_value=0.0,
            max_value=1e6,
            allow_nan=False,
            allow_infinity=False,
        ),
        max_size=50,
    )
)
def test_cdf_points_matches_naive_definition(values):
    points = cdf_points(values)
    assert len(points) == len(values)
    assert [v for v, _ in points] == sorted(values)
    n = len(values)
    for index, (_, percent) in enumerate(points):
        assert percent == pytest.approx(100.0 * (index + 1) / n)
    if points:
        assert points[-1][1] == pytest.approx(100.0)
    # Mapping input: only the values matter, not the node keys.
    keyed = cdf_points({i: v for i, v in enumerate(values)})
    assert keyed == points


def test_cdf_points_empty():
    assert cdf_points([]) == []
    assert cdf_points({}) == []
