"""Tests for deterministic seed derivation."""

from repro.sim.rng import SeedSequence, derive_seed


def test_derive_seed_is_stable():
    assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)


def test_derive_seed_differs_across_labels():
    seeds = {
        derive_seed(42, "a"),
        derive_seed(42, "b"),
        derive_seed(42, "a", 0),
        derive_seed(43, "a"),
    }
    assert len(seeds) == 4


def test_streams_are_reproducible():
    a = SeedSequence(7).stream("x", 3)
    b = SeedSequence(7).stream("x", 3)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_streams_are_independent():
    seq = SeedSequence(7)
    a = seq.stream("x")
    b = seq.stream("y")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_child_sequences():
    child_a = SeedSequence(7).child("node", 1)
    child_b = SeedSequence(7).child("node", 1)
    assert child_a.stream("s").random() == child_b.stream("s").random()
    other = SeedSequence(7).child("node", 2)
    assert child_a.stream("s").random() != other.stream("s").random()
