"""Tests for deterministic seed derivation."""

from repro.sim.rng import SeedSequence, derive_seed


def test_derive_seed_is_stable():
    assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)


def test_derive_seed_differs_across_labels():
    seeds = {
        derive_seed(42, "a"),
        derive_seed(42, "b"),
        derive_seed(42, "a", 0),
        derive_seed(43, "a"),
    }
    assert len(seeds) == 4


def test_streams_are_reproducible():
    a = SeedSequence(7).stream("x", 3)
    b = SeedSequence(7).stream("x", 3)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_streams_are_independent():
    seq = SeedSequence(7)
    a = seq.stream("x")
    b = seq.stream("y")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_derivation_is_locked():
    """Golden values freezing the seed-derivation function itself.

    Every replica of a parallel run rebuilds its session from the same
    root seed, so the label-path derivation must never change silently:
    a different hash recipe would make historical goldens, recorded
    traces, and cross-process replicas all diverge at once.  These
    constants were computed from the current (root, labels) ->
    SHA-256[:8] scheme; a failure here means the derivation changed, not
    that these numbers need updating.
    """
    assert derive_seed(20160627, "primes", 0) == 5672588626772562118
    assert derive_seed(20160627, "primes", 7) == 15002583343034006384
    assert derive_seed(20160627, "views") == 9119780314271973216
    assert derive_seed(42, "node", 17) == 2681064663148865082
    assert derive_seed(0) == 8025406318521964459


def test_per_node_prime_rng_derivation_is_locked():
    """The per-node prime stream is ``seeds.stream("primes", node_id)``.

    Locks the first draws of the streams the context hands to nodes —
    the exact values replica workers must reproduce when they rebuild
    a node from the spec on the other side of a process boundary.
    """
    draws = {
        node_id: SeedSequence(20160627)
        .stream("primes", node_id)
        .getrandbits(64)
        for node_id in (0, 7)
    }
    assert draws == {
        0: 13917562732977715218,
        7: 1736228482358554618,
    }
    stream = SeedSequence(20160627).stream("primes", 3)
    assert [stream.getrandbits(32) for _ in range(3)] == [
        404381355,
        1371526336,
        886301991,
    ]


def test_child_sequences():
    child_a = SeedSequence(7).child("node", 1)
    child_b = SeedSequence(7).child("node", 1)
    assert child_a.stream("s").random() == child_b.stream("s").random()
    other = SeedSequence(7).child("node", 2)
    assert child_a.stream("s").random() != other.stream("s").random()
