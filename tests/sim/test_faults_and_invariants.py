"""Property tests on the metering substrate and fault injectors."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.faults import LinkCut, RandomLoss
from repro.sim.message import Message
from repro.sim.metrics import BandwidthMeter

transfers = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),  # sender
        st.integers(min_value=0, max_value=9),  # recipient
        st.integers(min_value=0, max_value=10_000),  # size
        st.integers(min_value=0, max_value=20),  # round
    ).filter(lambda t: t[0] != t[1]),
    max_size=60,
)


@given(transfers)
@settings(max_examples=60)
def test_meter_conservation(batch):
    """Every byte uploaded is a byte downloaded — the meter conserves."""
    meter = BandwidthMeter()
    for sender, recipient, size, rnd in batch:
        meter.record(sender, recipient, size, rnd)
    total_up = sum(t.bytes_up for t in meter.totals.values())
    total_down = sum(t.bytes_down for t in meter.totals.values())
    assert total_up == total_down == sum(size for _, _, size, _ in batch)


@given(transfers)
@settings(max_examples=60)
def test_meter_window_sums_to_total(batch):
    meter = BandwidthMeter()
    for sender, recipient, size, rnd in batch:
        meter.record(sender, recipient, size, rnd)
    for node in range(10):
        total = meter.node_bytes(node)
        up = meter.node_bytes(node, direction="up")
        down = meter.node_bytes(node, direction="down")
        assert total == up + down


@given(st.floats(min_value=0.0, max_value=1.0), st.integers(0, 2**16))
@settings(max_examples=40)
def test_random_loss_rate_tracks_probability(probability, seed):
    loss = RandomLoss(probability=probability, rng=random.Random(seed))
    trials = 400
    dropped = sum(
        1
        for i in range(trials)
        if loss(Message(sender=1, recipient=2, round_no=i))
    )
    assert abs(dropped / trials - probability) < 0.12


def test_link_cut_is_directional_when_asked():
    cut = LinkCut(links={(1, 2)})
    assert cut(Message(sender=1, recipient=2, round_no=0))
    assert not cut(Message(sender=2, recipient=1, round_no=0))
    both = LinkCut.between(1, 2)
    assert both(Message(sender=2, recipient=1, round_no=0))
