"""Tests for bandwidth metering and CDF helpers."""

import pytest

from repro.sim.metrics import BandwidthMeter, cdf_points, kbps


def test_kbps_conversion():
    # 1250 bytes over 1 s = 10_000 bits/s = 10 kbps.
    assert kbps(1250, 1.0) == pytest.approx(10.0)
    assert kbps(1250, 2.0) == pytest.approx(5.0)


def test_kbps_rejects_nonpositive_duration():
    with pytest.raises(ValueError):
        kbps(100, 0)


def test_record_attributes_symmetrically():
    meter = BandwidthMeter()
    meter.record(sender=1, recipient=2, size=100, rnd=0)
    assert meter.totals[1].bytes_up == 100
    assert meter.totals[1].bytes_down == 0
    assert meter.totals[2].bytes_down == 100
    assert meter.totals[2].bytes_up == 0
    assert meter.totals[1].messages_up == 1
    assert meter.totals[2].messages_down == 1


def test_record_rejects_negative_size():
    with pytest.raises(ValueError):
        BandwidthMeter().record(1, 2, -1, 0)


def test_node_bytes_window():
    meter = BandwidthMeter()
    meter.record(1, 2, 100, rnd=0)
    meter.record(1, 2, 200, rnd=1)
    meter.record(2, 1, 50, rnd=1)
    meter.record(1, 2, 400, rnd=2)
    assert meter.node_bytes(1, first_round=1, last_round=1) == 250
    assert meter.node_bytes(1) == 750
    assert meter.node_bytes(2) == 750


def test_node_kbps_uses_window_duration():
    meter = BandwidthMeter()
    meter.record(1, 2, 1250, rnd=0)
    meter.record(1, 2, 1250, rnd=1)
    # 2500 bytes over 2 rounds of 1 s = 10 kbps.
    assert meter.node_kbps(1) == pytest.approx(10.0)
    # Only round 1: 1250 bytes over 1 s = 10 kbps.
    assert meter.node_kbps(1, first_round=1) == pytest.approx(10.0)


def test_mean_kbps():
    meter = BandwidthMeter()
    meter.record(1, 2, 1250, rnd=0)
    assert meter.mean_kbps([1, 2]) == pytest.approx(10.0)
    assert meter.mean_kbps([]) == 0.0


def test_cdf_points_from_mapping():
    points = cdf_points({1: 10.0, 2: 30.0, 3: 20.0, 4: 40.0})
    values = [v for v, _ in points]
    percents = [p for _, p in points]
    assert values == [10.0, 20.0, 30.0, 40.0]
    assert percents == [25.0, 50.0, 75.0, 100.0]


def test_cdf_points_empty():
    assert cdf_points([]) == []
