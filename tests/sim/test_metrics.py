"""Tests for bandwidth metering and CDF helpers."""

import random

import pytest

from repro.analysis.hotpath import DictMeterBaseline
from repro.sim.metrics import BandwidthMeter, cdf_points, kbps


def test_kbps_conversion():
    # 1250 bytes over 1 s = 10_000 bits/s = 10 kbps.
    assert kbps(1250, 1.0) == pytest.approx(10.0)
    assert kbps(1250, 2.0) == pytest.approx(5.0)


def test_kbps_rejects_nonpositive_duration():
    with pytest.raises(ValueError):
        kbps(100, 0)


def test_record_attributes_symmetrically():
    meter = BandwidthMeter()
    meter.record(sender=1, recipient=2, size=100, rnd=0)
    assert meter.totals[1].bytes_up == 100
    assert meter.totals[1].bytes_down == 0
    assert meter.totals[2].bytes_down == 100
    assert meter.totals[2].bytes_up == 0
    assert meter.totals[1].messages_up == 1
    assert meter.totals[2].messages_down == 1


def test_record_rejects_negative_size():
    with pytest.raises(ValueError):
        BandwidthMeter().record(1, 2, -1, 0)


def test_node_bytes_window():
    meter = BandwidthMeter()
    meter.record(1, 2, 100, rnd=0)
    meter.record(1, 2, 200, rnd=1)
    meter.record(2, 1, 50, rnd=1)
    meter.record(1, 2, 400, rnd=2)
    assert meter.node_bytes(1, first_round=1, last_round=1) == 250
    assert meter.node_bytes(1) == 750
    assert meter.node_bytes(2) == 750


def test_node_kbps_uses_window_duration():
    meter = BandwidthMeter()
    meter.record(1, 2, 1250, rnd=0)
    meter.record(1, 2, 1250, rnd=1)
    # 2500 bytes over 2 rounds of 1 s = 10 kbps.
    assert meter.node_kbps(1) == pytest.approx(10.0)
    # Only round 1: 1250 bytes over 1 s = 10 kbps.
    assert meter.node_kbps(1, first_round=1) == pytest.approx(10.0)


def test_mean_kbps():
    meter = BandwidthMeter()
    meter.record(1, 2, 1250, rnd=0)
    assert meter.mean_kbps([1, 2]) == pytest.approx(10.0)
    assert meter.mean_kbps([]) == 0.0


def test_cdf_points_from_mapping():
    points = cdf_points({1: 10.0, 2: 30.0, 3: 20.0, 4: 40.0})
    values = [v for v, _ in points]
    percents = [p for _, p in points]
    assert values == [10.0, 20.0, 30.0, 40.0]
    assert percents == [25.0, 50.0, 75.0, 100.0]


def test_cdf_points_empty():
    assert cdf_points([]) == []


def test_node_kbps_rejects_inverted_window():
    meter = BandwidthMeter()
    meter.record(1, 2, 100, rnd=0)
    meter.record(1, 2, 100, rnd=1)
    with pytest.raises(ValueError, match="inverted round window"):
        meter.node_kbps(1, first_round=2, last_round=1)
    with pytest.raises(ValueError, match="inverted round window"):
        meter.all_node_kbps([1, 2], first_round=5, last_round=0)


def test_node_series_pads_to_rounds_seen():
    meter = BandwidthMeter()
    meter.record(1, 2, 100, rnd=0)
    meter.record(3, 1, 50, rnd=3)
    assert meter.node_series(1, "up") == [100, 0, 0, 0]
    assert meter.node_series(1, "down") == [0, 0, 0, 50]
    assert meter.node_series(1) == [100, 0, 0, 50]
    assert meter.node_series(99) == [0, 0, 0, 0]


# ---------------------------------------------------------------------------
# Columnar-vs-dict parity: the columnar layout must account every byte
# exactly like the seed's (node, round)-keyed dicts did.
# ---------------------------------------------------------------------------


def _random_traffic(seed, n_nodes=24, rounds=20, messages=4000):
    rng = random.Random(seed)
    for _ in range(messages):
        sender = rng.randrange(n_nodes)
        recipient = (sender + rng.randrange(1, n_nodes)) % n_nodes
        yield sender, recipient, rng.randrange(0, 5000), rng.randrange(rounds)


def test_columnar_parity_with_dict_accounting():
    columnar = BandwidthMeter()
    reference = DictMeterBaseline()
    for sender, recipient, size, rnd in _random_traffic(seed=0xC01):
        columnar.record(sender, recipient, size, rnd)
        reference.record(sender, recipient, size, rnd)
    assert columnar.rounds_seen == reference.rounds_seen
    windows = [(0, None), (0, 5), (4, 19), (7, 7), (19, None)]
    for node in range(24):
        for first, last in windows:
            for direction in ("both", "up", "down"):
                assert columnar.node_bytes(
                    node, first, last, direction
                ) == reference.node_bytes(node, first, last, direction), (
                    node, first, last, direction,
                )


def test_columnar_parity_on_fixed_seed_session():
    """End to end: a fixed-seed PAG run accounted both ways, byte for
    byte (the meter-parity acceptance criterion)."""
    from repro.core import PagConfig, PagSession

    class FanoutMeter:
        """Feeds every record call to the columnar meter and the
        dict-layout reference simultaneously."""

        def __init__(self, columnar, reference):
            self.columnar = columnar
            self.reference = reference

        def record(self, sender, recipient, size, rnd):
            self.columnar.record(sender, recipient, size, rnd)
            self.reference.record(sender, recipient, size, rnd)

    reference = DictMeterBaseline()
    session = PagSession.create(
        12, config=PagConfig.for_system_size(12, stream_rate_kbps=150.0)
    )
    network = session.simulator.network
    meter = network.meter
    network.meter = FanoutMeter(meter, reference)
    session.run(8)
    network.meter = meter
    for node in [0] + sorted(session.nodes):
        for direction in ("both", "up", "down"):
            assert meter.node_bytes(
                node, direction=direction
            ) == reference.node_bytes(node, direction=direction)
            assert meter.node_bytes(
                node, 4, direction=direction
            ) == reference.node_bytes(node, 4, direction=direction)


def test_merge_from_is_exact():
    whole = BandwidthMeter()
    shard_a = BandwidthMeter()
    shard_b = BandwidthMeter()
    for i, (sender, recipient, size, rnd) in enumerate(
        _random_traffic(seed=0xD1FF, messages=500)
    ):
        whole.record(sender, recipient, size, rnd)
        (shard_a if i % 2 else shard_b).record(sender, recipient, size, rnd)
    merged = BandwidthMeter()
    merged.merge_from(shard_a)
    merged.merge_from(shard_b)
    assert merged.rounds_seen == whole.rounds_seen
    for node in range(24):
        assert merged.node_series(node) == whole.node_series(node)
        assert merged.totals[node].bytes_up == whole.totals[node].bytes_up
        assert (
            merged.totals[node].messages_down
            == whole.totals[node].messages_down
        )
