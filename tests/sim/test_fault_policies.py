"""Fault-injector coverage: every injector, every execution policy.

The contract under test is threefold: (1) each declarative
:class:`~repro.sim.faults.FaultSpec` wired through
``ScenarioSpec.fault_schedule`` produces identical traffic, verdicts
and per-injector counters under serial, sharded and parallel execution
(rules only evaluate on the parent network — replica workers run in
capture mode); (2) fault schedules are deterministic functions of the
spec seed; (3) malformed declarations fail loudly at construction, not
as silent no-ops mid-run.
"""

import random

import pytest

from repro.scenarios.spec import ScenarioSpec
from repro.sim.faults import (
    BudgetFault,
    Corruption,
    CorruptionFault,
    DelayFault,
    DelayRule,
    LinkBudget,
    LinkCut,
    LinkCutFault,
    LossFault,
    NodeOutage,
    OutageFault,
    Partition,
    PartitionFault,
    RandomLoss,
)

POLICIES = ("serial", "sharded", "parallel")

EXCHANGE = ("key_request", "key_response", "serve", "attestation", "ack")

FAULTS = {
    "loss": LossFault(probability=0.08, kinds=EXCHANGE),
    "delay": DelayFault(probability=0.06, triggers=5,
                        kinds=("serve", "attestation", "ack")),
    "partition": PartitionFault(group=(3, 7), first_round=3,
                                last_round=4, kinds=EXCHANGE),
    "outage": OutageFault(node_id=9, first_round=2, last_round=3),
    "link-cut": LinkCutFault(links=((2, 6), (6, 2)), kinds=EXCHANGE),
    "corruption": CorruptionFault(probability=1.0, max_corruptions=2,
                                  kinds=("serve", "ack")),
    "budget": BudgetFault(node_kbps=((4, 220.0),)),
}


def run_spec(fault, policy, seed=123, **overrides):
    spec = ScenarioSpec(
        name="fault-policy",
        nodes=12,
        rounds=7,
        warmup_rounds=2,
        fault_schedule=(fault,),
        seed=seed,
        policy=policy,
        workers=2,
        **overrides,
    )
    return spec.run()


def fingerprint(result):
    return {
        "messages_sent": result.messages_sent,
        "messages_dropped": result.messages_dropped,
        "messages_delayed": result.messages_delayed,
        "hashes": result.crypto_hashes,
        "fault_stats": result.fault_stats,
        "accusations": result.accusations,
        "verdicts": sorted(
            (v.node, v.reason.name, v.exchange_round, v.detected_by)
            for v in result.session.all_verdicts()
        ),
    }


@pytest.mark.parametrize("name", sorted(FAULTS))
def test_injector_bit_identical_across_policies(name):
    """Each injector's drops, counters and verdicts are policy-blind,
    and the parallel merge grafts identical tallies back."""
    records = {
        policy: fingerprint(run_spec(FAULTS[name], policy))
        for policy in POLICIES
    }
    assert records["serial"] == records["sharded"] == records["parallel"]
    stats = records["serial"]["fault_stats"]
    assert list(stats) == [f"{FAULTS[name].kind}[0]"]


def test_fault_stats_fire_for_each_injector():
    """The scenario dimensions above actually exercise every injector
    (a fault that never fires would make the matrix test vacuous)."""
    for name, fault in FAULTS.items():
        result = run_spec(fault, "serial")
        (stats,) = result.fault_stats.values()
        assert sum(stats.values()) > 0, f"{name} never fired"


def test_loss_schedule_is_deterministic_in_spec_seed():
    """Satellite regression: the same spec drops the same messages.

    ``RandomLoss`` once defaulted to an unseeded shared rng, so two
    runs of one spec disagreed; the rng now derives from the spec seed.
    """
    first = fingerprint(run_spec(FAULTS["loss"], "serial", seed=7))
    second = fingerprint(run_spec(FAULTS["loss"], "serial", seed=7))
    assert first == second
    assert first["messages_dropped"] > 0
    other_seed = fingerprint(run_spec(FAULTS["loss"], "serial", seed=8))
    assert other_seed != first  # the seed actually steers the schedule


def test_random_loss_default_rng_is_seed_derived():
    """Injector-level: two default-constructed instances with the same
    seed agree drop-for-drop; distinct seeds diverge."""
    from repro.sim.message import Message

    messages = [
        Message(sender=s, recipient=r, round_no=0)
        for s in range(6)
        for r in range(6)
        if s != r
    ]
    first = RandomLoss(probability=0.5, seed=99)
    second = RandomLoss(probability=0.5, seed=99)
    third = RandomLoss(probability=0.5, seed=100)
    picks_first = [first(m) for m in messages]
    picks_second = [second(m) for m in messages]
    picks_third = [third(m) for m in messages]
    assert picks_first == picks_second
    assert first.dropped == second.dropped > 0
    assert picks_first != picks_third


def test_delay_counters_and_release_balance():
    result = run_spec(FAULTS["delay"], "serial")
    (stats,) = result.fault_stats.values()
    assert stats["delayed"] == stats["released"] > 0
    assert result.messages_delayed == stats["delayed"]
    # Delays reorder but never destroy traffic: no drop counted.
    assert result.messages_dropped == 0


def test_summary_carries_fault_keys_only_for_fault_specs():
    faulty = run_spec(FAULTS["loss"], "serial").summary()
    assert faulty["messages_dropped"] > 0
    assert "faults" in faulty and "accusations" in faulty
    plain = ScenarioSpec(
        name="plain", nodes=8, rounds=5, warmup_rounds=1
    ).run().summary()
    assert "faults" not in plain and "accusations" not in plain


def test_corrupted_update_is_caught_by_accusation_path():
    """Acceptance case: a Byzantine bit-flip on a serve is detected by
    the receiver's attestation check, recovered through the accusation
    path (probe -> probe-ack -> confirm), and convicts nobody."""
    result = run_spec(
        CorruptionFault(probability=1.0, max_corruptions=3,
                        kinds=("serve",)),
        "serial",
    )
    (stats,) = result.fault_stats.values()
    assert stats["corrupted"] == 3
    acc = result.accusations
    assert acc["accusations_received"] > 0
    assert acc["probes_sent"] > 0
    assert acc["probe_acks_accepted"] > 0
    assert acc["confirms_sent"] > 0
    assert result.convicted == ()


def test_outage_is_convicted_like_a_refusal():
    """A crashed node is observationally a refuser (section VI-B): it
    is convicted, and nobody else is."""
    result = run_spec(FAULTS["outage"], "serial")
    verdicts = [
        v for v in result.session.all_verdicts() if v.detected_by != 9
    ]
    assert {v.node for v in verdicts} == {9}


class TestDeclarationValidation:
    """Satellite: malformed injector inputs raise at construction."""

    def test_link_cut_rejects_self_link(self):
        with pytest.raises(ValueError, match="self-link"):
            LinkCut(links={(3, 3)})

    def test_link_cut_rejects_negative_ids(self):
        with pytest.raises(ValueError, match="negative"):
            LinkCut(links={(-1, 2)})

    def test_link_cut_rejects_non_pairs(self):
        with pytest.raises(ValueError, match="pair"):
            LinkCut(links={(1, 2, 3)})

    def test_outage_rejects_inverted_window(self):
        with pytest.raises(ValueError, match="window"):
            NodeOutage(node_id=3, first_round=5, last_round=2)

    def test_outage_rejects_negative_node(self):
        with pytest.raises(ValueError):
            NodeOutage(node_id=-1, first_round=0, last_round=1)

    def test_random_loss_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            RandomLoss(probability=1.5)

    def test_delay_rule_rejects_zero_triggers(self):
        with pytest.raises(ValueError, match="triggers"):
            DelayRule(probability=0.5, triggers=0)

    def test_partition_rejects_empty_group(self):
        with pytest.raises(ValueError, match="group"):
            Partition(group=set(), first_round=0, last_round=1)

    def test_partition_rejects_inverted_window(self):
        with pytest.raises(ValueError, match="window"):
            Partition(group={1, 2}, first_round=4, last_round=1)

    def test_corruption_rejects_zero_budget(self):
        with pytest.raises(ValueError, match="max_corruptions"):
            Corruption(max_corruptions=0)

    def test_budget_rejects_non_positive_rate(self):
        with pytest.raises(ValueError, match="budget must be positive"):
            LinkBudget(node_kbps={3: 0.0})

    def test_spec_rejects_unknown_message_kind(self):
        with pytest.raises(ValueError, match="unknown message kinds"):
            ScenarioSpec(
                name="bad",
                nodes=8,
                rounds=5,
                warmup_rounds=1,
                fault_schedule=(
                    LossFault(probability=0.1, kinds=("telegram",)),
                ),
            )

    def test_spec_rejects_out_of_range_fault_node(self):
        with pytest.raises(ValueError, match="OutageFault"):
            ScenarioSpec(
                name="bad",
                nodes=8,
                rounds=5,
                warmup_rounds=1,
                fault_schedule=(
                    OutageFault(node_id=99, first_round=1, last_round=2),
                ),
            )

    def test_spec_rejects_window_past_the_run(self):
        with pytest.raises(ValueError, match="never takes effect"):
            ScenarioSpec(
                name="bad",
                nodes=8,
                rounds=5,
                warmup_rounds=1,
                fault_schedule=(
                    OutageFault(node_id=3, first_round=7, last_round=9),
                ),
            )

    def test_spec_rejects_non_fault_entries(self):
        with pytest.raises(ValueError, match="FaultSpec"):
            ScenarioSpec(
                name="bad",
                nodes=8,
                rounds=5,
                warmup_rounds=1,
                fault_schedule=("loss",),
            )

    def test_spec_rejects_faults_on_acting_protocol(self):
        with pytest.raises(ValueError, match="PAG"):
            ScenarioSpec(
                name="bad",
                protocol="acting",
                nodes=8,
                rounds=5,
                warmup_rounds=1,
                fault_schedule=(LossFault(probability=0.1),),
            )


def test_link_budget_throttles_serves_only():
    """Fig. 7 heterogeneity: a constrained link tail-drops serve traffic
    over its per-round byte budget but never touches the accountability
    plane, so nobody honest is convicted."""
    result = run_spec(BudgetFault(node_kbps=((4, 180.0),)), "serial")
    (stats,) = result.fault_stats.values()
    assert stats["dropped"] > 0
    assert result.convicted == ()


def test_delayed_messages_bypass_further_rules():
    """One fault per message: a released message re-enters the queue
    without re-evaluation, so a delay rule can never re-hold it and a
    loss rule can never eat it (the schedule stays replayable)."""
    from repro.sim.message import Message
    from repro.sim.network import Network

    network = Network()
    delay = DelayRule(probability=1.0, triggers=1, seed=5)
    loss = RandomLoss(probability=1.0, seed=5)
    network.add_drop_rule(delay)
    network.add_drop_rule(loss)
    network.begin_round(0)
    network.send(Message(sender=1, recipient=2, round_no=0))
    assert network.messages_delayed == 1
    assert network.pop() is None  # held, not queued
    # The round boundary flushes the held message; it re-enters the
    # queue without rule re-evaluation — the certain-loss rule behind
    # the delay rule never gets to eat it.
    network.begin_round(1)
    released = network.pop()
    assert released is not None and released.round_no == 0
    assert network.messages_dropped == 0
    assert delay.delayed == 1 and delay.released == 1
