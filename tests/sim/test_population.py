"""The million-node population tier, at test scale.

Three contracts anchor the tier:

* **Cohort bit-identity** — attaching a plane must not change one bit
  of the full-fidelity cohort's accounting: a population run's cohort
  measurements equal a plain serial run of ``cohort_equivalent()``.
* **Calibration** — the plane's per-round means are pinned to the
  cohort's honest-consumer means (realized-mean normalisation), so the
  population-wide bandwidth distribution matches a full-fidelity run
  of the same population statistically (tolerances documented in
  PERFORMANCE.md: mean within 15 %, KS distance within 0.45 at the
  48-node validation point — single-seed run-to-run noise alone is
  ~±10 % at this scale, and a small cohort overestimates duplicate
  traffic because its fanout/membership ratio is larger than the
  deployment's).
* **Crypto reconciliation** — the plane's ``real + memoised`` hash
  counts reconcile with what full fidelity would have spent, while
  real work stays O(1) per round via the exchange class cache.
"""

import dataclasses
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.messages import ServeEntry, Update
from repro.core.verification import (
    ExchangeClassCache,
    ack_hash,
    serve_hashes,
)
from repro.crypto.homomorphic import HomomorphicHasher
from repro.scenarios.spec import AdversaryGroup, ScenarioSpec
from repro.sim.population import (
    PopulationResult,
    wire_population,
)

#: A deployment-grade modulus is irrelevant here; 3233 = 61 * 53.
MOD = 3233


def _spec(**kwargs):
    kwargs.setdefault("name", "pop-test")
    kwargs.setdefault("nodes", 16)
    kwargs.setdefault("rounds", 6)
    kwargs.setdefault("warmup_rounds", 2)
    kwargs.setdefault("population", 64)
    kwargs.setdefault("policy", "population")
    return ScenarioSpec(**kwargs)


def _entries(n=3):
    return tuple(
        ServeEntry(
            update=Update(uid=uid, round_created=0, expiry_round=10),
            count=1 + (uid % 2),
            has_payload=True,
            ack_only=False,
        )
        for uid in range(n)
    )


# ---------------------------------------------------------------------------
# hash_class / ExchangeClassCache units
# ---------------------------------------------------------------------------


def test_hash_class_counts_real_and_memoised_work():
    hasher = HomomorphicHasher(modulus=MOD)
    plain = HomomorphicHasher(modulus=MOD)
    result = hasher.hash_class(7, 13, members=5)
    assert result == plain.hash(7, 13)
    # One real evaluation, four memoised members.
    assert hasher.operations == 1
    assert hasher.memoised_operations == 4
    with pytest.raises(ValueError, match="at least one member"):
        hasher.hash_class(7, 13, members=0)


def test_class_cache_miss_then_hit_accounting():
    hasher = HomomorphicHasher(modulus=MOD)
    cache = ExchangeClassCache(hasher)
    entries = _entries()
    reference = HomomorphicHasher(modulus=MOD)
    expected_pair = serve_hashes(reference, entries, prime=11)
    real_cost = reference.operations

    pair = cache.serve_hashes("r1", entries, prime=11, members=4)
    assert pair == expected_pair
    # Miss: the real work ran once; the other 3 members are memoised.
    assert hasher.operations == real_cost
    assert hasher.memoised_operations == real_cost * 3
    assert cache.misses == 1 and cache.hits == 0

    again = cache.serve_hashes("r1", entries, prime=11, members=10)
    assert again == expected_pair
    # Hit: no new real work; all 10 members memoised.
    assert hasher.operations == real_cost
    assert hasher.memoised_operations == real_cost * 13
    assert cache.hits == 1
    stats = cache.stats()
    assert stats["class_hits"] == 1
    assert stats["class_misses"] == 1
    assert stats["class_hit_rate"] == 0.5
    assert stats["class_entries"] == 1


def test_class_cache_distinguishes_exponents_and_kinds():
    hasher = HomomorphicHasher(modulus=MOD)
    cache = ExchangeClassCache(hasher)
    entries = _entries()
    cache.serve_hashes("r1", entries, prime=11)
    # Same class key, different prime: a different equivalence class.
    cache.serve_hashes("r1", entries, prime=13)
    # serve and ack caches do not collide on the same key.
    reference = HomomorphicHasher(modulus=MOD)
    expected = ack_hash(reference, entries, key_prev=17)
    assert cache.ack_hash("r1", entries, key_prev=17) == expected
    assert cache.misses == 3 and cache.hits == 0


def test_class_cache_eviction_and_validation():
    hasher = HomomorphicHasher(modulus=MOD)
    cache = ExchangeClassCache(hasher, max_entries=4)
    entries = _entries(1)
    for prime in (3, 5, 7, 11):
        cache.serve_hashes("k", entries, prime=prime)
    assert cache.stats()["class_entries"] == 4
    # The fifth insert evicts the oldest half before landing.
    cache.serve_hashes("k", entries, prime=13)
    assert cache.stats()["class_entries"] == 3
    # The two oldest classes are gone (re-asking recomputes)...
    cache.serve_hashes("k", entries, prime=3)
    assert cache.misses == 6
    # ...while a younger one still hits.
    cache.serve_hashes("k", entries, prime=11)
    assert cache.hits == 1
    with pytest.raises(ValueError, match="at least two"):
        ExchangeClassCache(hasher, max_entries=1)
    with pytest.raises(ValueError, match="at least one member"):
        cache.serve_hashes("k", entries, prime=3, members=0)
    with pytest.raises(ValueError, match="at least one member"):
        cache.ack_hash("k", entries, key_prev=3, members=-2)


# ---------------------------------------------------------------------------
# wiring and determinism
# ---------------------------------------------------------------------------


def test_wire_population_refuses_planeless_population():
    stub = SimpleNamespace(population=10, nodes=16)
    with pytest.raises(ValueError, match="beyond the cohort"):
        wire_population(stub, session=None)


def test_population_run_is_deterministic():
    first = _spec().run()
    second = _spec().run()
    assert isinstance(first, PopulationResult)
    assert first.node_kbps == second.node_kbps
    np.testing.assert_array_equal(first.plane_kbps, second.plane_kbps)
    assert first.plane_stats == second.plane_stats
    assert first.summary()["plane"] == second.summary()["plane"]
    assert first.cdf() == second.cdf()


def test_cohort_is_bit_identical_to_cohort_equivalent():
    # The acceptance oracle: the sampled cohort inside a population run
    # equals — bit for bit — a plain serial run of the stripped spec.
    spec = _spec(
        adversaries=(AdversaryGroup(strategy="free-rider", count=1),),
    )
    population = spec.run()
    plain = spec.cohort_equivalent().run()
    assert population.node_kbps == plain.node_kbps
    assert population.convicted == plain.convicted
    assert population.verdicts == plain.verdicts
    assert population.messages_sent == plain.messages_sent
    assert population.total_bytes == plain.total_bytes
    # The cohort's crypto tally is untouched by the plane's memoised
    # accounting (the plane hashes on its own hasher).
    assert population.crypto_hashes == plain.crypto_hashes


def test_plane_means_are_calibrated_to_the_cohort():
    spec = _spec(rounds=8)
    result = spec.run()
    session = result.session
    honest = sorted(session.nodes)  # no deviants in this spec
    cohort_mean = session.simulator.network.meter.mean_kbps(
        honest,
        round_seconds=session.simulator.round_seconds,
        first_round=spec.warmup_rounds,
        direction="down",
    )
    plane_mean = float(np.asarray(result.plane_kbps).mean())
    # Realized-mean normalisation pins the plane mean to the cohort
    # honest mean exactly; only per-row integer rounding separates them.
    assert plane_mean == pytest.approx(cohort_mean, rel=0.01)
    assert result.plane_mean_kbps == pytest.approx(plane_mean)
    # The population-wide mean is the consumer-weighted combination.
    total = sum(result.node_kbps.values()) + float(
        np.asarray(result.plane_kbps).sum()
    )
    consumers = len(result.node_kbps) + len(result.plane_kbps)
    assert result.population_mean_kbps == pytest.approx(
        total / consumers
    )


def test_crypto_counters_reconcile_with_full_fidelity():
    spec = _spec(rounds=8)
    result = spec.run()
    stats = result.plane_stats
    # What full fidelity would have spent on the plane: the cohort's
    # per-honest-consumer hash count scaled to the plane width.
    n_honest = len(result.session.nodes)
    plane_size = spec.population - spec.nodes
    expected = result.crypto_hashes / n_honest * plane_size
    modelled = stats["real_hashes"] + stats["memoised_hashes"]
    assert modelled == pytest.approx(expected, rel=0.15)
    # Real work is O(rounds), not O(plane nodes * rounds).
    assert stats["real_hashes"] < result.crypto_hashes
    assert stats["memoised_hashes"] > stats["real_hashes"]
    assert stats["plane_nodes"] == plane_size
    assert stats["rounds"] == spec.rounds
    # Stats are snapshotted before the spill is torn down: every round
    # row for both fields is on disk at that point.
    assert stats["spill_bytes"] == spec.rounds * plane_size * 8 * 2


# ---------------------------------------------------------------------------
# statistical validation against full fidelity
# ---------------------------------------------------------------------------


def _ks_distance(a, b):
    """Two-sample Kolmogorov-Smirnov statistic."""
    a = np.sort(np.asarray(a, dtype=np.float64))
    b = np.sort(np.asarray(b, dtype=np.float64))
    grid = np.concatenate([a, b])
    fa = np.searchsorted(a, grid, side="right") / len(a)
    fb = np.searchsorted(b, grid, side="right") / len(b)
    return float(np.abs(fa - fb).max())


def test_population_distribution_matches_full_fidelity():
    # A 48-consumer deployment, reproduced two ways: every node at full
    # fidelity, and a 32-node sampled cohort with a 16-node calibrated
    # plane.  The tolerances here are the documented validation gates
    # (PERFORMANCE.md, "Statistical validation"): mean within 15 %, KS
    # within 0.45 — measured 12 % and 0.32 at this seed, with ~±10 %
    # pure seed noise at this scale.
    rounds, warmup = 10, 2
    full = ScenarioSpec(
        name="pop-full", nodes=48, rounds=rounds, warmup_rounds=warmup
    ).run()
    sampled = ScenarioSpec(
        name="pop-sampled",
        nodes=32,
        rounds=rounds,
        warmup_rounds=warmup,
        population=48,
        policy="population",
    ).run()
    full_values = np.array(sorted(full.node_kbps.values()))
    pop_values = np.concatenate(
        [
            np.array(sorted(sampled.node_kbps.values())),
            np.asarray(sampled.plane_kbps, dtype=np.float64),
        ]
    )
    # Mean within 15 %.
    assert sampled.population_mean_kbps == pytest.approx(
        full_values.mean(), rel=0.15
    )
    # Distribution shape within KS 0.45.
    assert _ks_distance(full_values, pop_values) <= 0.45
    # Verdict parity: both runs are honest and convict nobody.
    assert full.verdicts == 0
    assert sampled.verdicts == 0


# ---------------------------------------------------------------------------
# result shaping
# ---------------------------------------------------------------------------


def test_population_summary_and_spill_dir(tmp_path):
    spec = _spec(population_spill_dir=str(tmp_path))
    result = spec.run()
    summary = result.summary()
    assert summary["population"] == spec.population
    assert summary["population_mean_down_kbps"] > 0
    assert summary["plane_mean_down_kbps"] > 0
    assert summary["peak_rss_mb"] > 0
    assert summary["plane"]["plane_nodes"] == 48
    assert summary["plane"]["class_hits"] >= 0
    # A user-supplied spill dir keeps its files after the run.
    assert sorted(p.name for p in tmp_path.iterdir()) == [
        "down.i64",
        "up.i64",
    ]


def test_population_cdf_merges_and_decimates():
    result = _spec().run()
    points = result.cdf()
    # Cohort consumers + plane nodes, no decimation at this scale.
    assert len(points) == len(result.node_kbps) + len(result.plane_kbps)
    values = [v for v, _ in points]
    ranks = [r for _, r in points]
    assert values == sorted(values)
    assert ranks[-1] == pytest.approx(1.0)
    assert all(0 < r <= 1 for r in ranks)
    # Past the bound the CDF decimates but keeps its endpoints.
    big = dataclasses.replace(
        result,
        plane_kbps=np.linspace(100.0, 900.0, 10_000),
    )
    decimated = big.cdf()
    assert len(decimated) <= PopulationResult.MAX_CDF_POINTS
    assert decimated[-1][1] == pytest.approx(1.0)
    dec_values = [v for v, _ in decimated]
    assert dec_values == sorted(dec_values)
    assert dec_values[-1] == max(
        max(result.node_kbps.values()), 900.0
    )


def test_failing_population_run_leaks_no_spill_dirs(monkeypatch):
    """Regression: a collection that dies mid-read used to leave the
    plane's ``repro-spill-*`` temp directory behind; the run path now
    closes the spill unconditionally."""
    import glob
    import os
    import tempfile

    from repro.sim.trace import ColumnarRoundSpill

    pattern = os.path.join(tempfile.gettempdir(), "repro-spill-*")
    before = set(glob.glob(pattern))

    def explode(self, *args, **kwargs):
        raise RuntimeError("collection died mid-read")

    monkeypatch.setattr(ColumnarRoundSpill, "window_sum", explode)
    with pytest.raises(RuntimeError, match="collection died"):
        _spec().run()
    assert set(glob.glob(pattern)) == before
