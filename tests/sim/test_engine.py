"""Tests for the round-synchronous engine and network."""

from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.sim.engine import Simulator
from repro.sim.message import Message, WireSizes
from repro.sim.network import Network
from repro.sim.node import SimNode
from repro.sim.trace import TraceRecorder


@dataclass
class Ping(Message):
    hops_left: int = 0
    kind: ClassVar[str] = "ping"

    def size_bytes(self, sizes: WireSizes) -> int:
        return sizes.header + 4


class PingNode(SimNode):
    """Replies to pings until hops run out; counts receptions."""

    def __init__(self, node_id, network, peer):
        super().__init__(node_id, network)
        self.peer = peer
        self.received = 0
        self.rounds_begun = []
        self.rounds_ended = []

    def begin_round(self, round_no):
        self.rounds_begun.append(round_no)
        if self.node_id == 0:
            self.send(
                Ping(
                    sender=self.node_id,
                    recipient=self.peer,
                    round_no=round_no,
                    hops_left=3,
                )
            )

    def on_message(self, message):
        self.received += 1
        if message.hops_left > 0:
            self.send(
                Ping(
                    sender=self.node_id,
                    recipient=message.sender,
                    round_no=message.round_no,
                    hops_left=message.hops_left - 1,
                )
            )

    def end_round(self, round_no):
        self.rounds_ended.append(round_no)


def make_sim():
    network = Network()
    sim = Simulator(network=network)
    a = PingNode(0, network, peer=1)
    b = PingNode(1, network, peer=0)
    sim.add_node(a)
    sim.add_node(b)
    return sim, a, b


def test_intra_round_message_chains_drain_to_quiescence():
    sim, a, b = make_sim()
    sim.run_round()
    # 0 sends ping(3), 1 replies ping(2), 0 replies ping(1), 1 ping(0).
    assert b.received == 2
    assert a.received == 2
    assert sim.network.pending() == 0


def test_round_lifecycle_order():
    sim, a, b = make_sim()
    sim.run(3)
    assert a.rounds_begun == [0, 1, 2]
    assert a.rounds_ended == [0, 1, 2]
    assert sim.current_round == 3


def test_duplicate_node_id_rejected():
    sim, a, b = make_sim()
    with pytest.raises(ValueError):
        sim.add_node(PingNode(0, sim.network, peer=1))


def test_self_send_rejected():
    network = Network()
    with pytest.raises(ValueError):
        network.send(Ping(sender=1, recipient=1, round_no=0, hops_left=0))


def test_bandwidth_is_metered():
    sim, a, b = make_sim()
    sim.run_round()
    # 4 messages of (24 + 4) bytes each.
    assert sim.network.meter.node_bytes(0) == 4 * 28
    assert sim.network.meter.node_bytes(1) == 4 * 28


def test_message_to_departed_node_is_dropped_silently():
    network = Network()
    sim = Simulator(network=network)
    a = PingNode(0, network, peer=99)  # 99 never joins
    sim.add_node(a)
    sim.run_round()  # must not raise
    assert a.received == 0


def test_drop_rule_suppresses_delivery_but_still_meters():
    sim, a, b = make_sim()
    sim.network.add_drop_rule(lambda m: m.recipient == 1)
    sim.run_round()
    assert b.received == 0
    assert a.received == 0
    assert sim.network.meter.node_bytes(0) > 0
    assert sim.network.messages_dropped == 1


def test_trace_recorder_sees_all_traffic():
    sim, a, b = make_sim()
    tap = TraceRecorder()
    sim.network.add_tap(tap)
    sim.run_round()
    assert len(tap) == 4
    assert tap.kinds() == {"ping": 4}
    assert tap.total_bytes() == 4 * 28
    assert (0, 1) in tap.link_set()
    assert len(tap.between(0, 1)) == 2
    assert len(tap.in_round(0)) == 4


def test_runaway_message_loop_detected():
    class LoopNode(SimNode):
        def begin_round(self, round_no):
            if self.node_id == 0:
                self.send(Ping(0, 1, round_no, hops_left=1))

        def on_message(self, message):
            # Always bounce back: infinite ping-pong.
            self.send(
                Ping(
                    sender=self.node_id,
                    recipient=message.sender,
                    round_no=message.round_no,
                    hops_left=1,
                )
            )

    network = Network()
    sim = Simulator(network=network)
    sim.add_node(LoopNode(0, network))
    sim.add_node(LoopNode(1, network))
    with pytest.raises(RuntimeError, match="budget"):
        sim.run_round()


def test_bandwidth_kbps_reporting():
    sim, a, b = make_sim()
    sim.run(2)
    report = sim.bandwidth_kbps()
    assert set(report) == {0, 1}
    assert report[0] > 0


# ---------------------------------------------------------------------------
# Hot-loop overhaul: cached node ordering and batched drain.
# ---------------------------------------------------------------------------


def test_node_ids_cached_and_invalidated_by_membership_changes():
    sim, a, b = make_sim()
    assert sim.node_ids() == [0, 1]
    c = PingNode(5, sim.network, peer=0)
    sim.add_node(c)
    assert sim.node_ids() == [0, 1, 5]
    sim.remove_node(1)
    assert sim.node_ids() == [0, 5]


def test_rounds_run_correctly_after_remove_node():
    sim, a, b = make_sim()
    sim.run(1)
    assert a.received > 0
    sim.remove_node(1)
    # Node 0 still pings the departed node 1; delivery is dropped.
    sim.run(2)
    assert a.rounds_begun == [0, 1, 2]
    assert b.rounds_begun == [0]


def test_nodes_added_out_of_order_begin_rounds_in_id_order():
    network = Network()
    sim = Simulator(network=network)
    order = []

    class Recorder(SimNode):
        def begin_round(self, round_no):
            order.append(self.node_id)

    for node_id in (7, 2, 9, 4):
        sim.add_node(Recorder(node_id, network))
    sim.run(1)
    assert order == [2, 4, 7, 9]


def test_batched_drain_preserves_fifo_reply_order():
    """take_pending + batch delivery must equal one-at-a-time popping:
    replies queued during a batch are delivered after that batch."""
    network = Network()
    sim = Simulator(network=network)
    log = []

    class Echo(SimNode):
        def begin_round(self, round_no):
            if self.node_id == 0:
                for recipient in (1, 2):
                    self.send(
                        Ping(
                            sender=0,
                            recipient=recipient,
                            round_no=round_no,
                            hops_left=1,
                        )
                    )

        def on_message(self, message):
            log.append((self.node_id, message.sender, message.hops_left))
            if message.hops_left > 0:
                self.send(
                    Ping(
                        sender=self.node_id,
                        recipient=0,
                        round_no=message.round_no,
                        hops_left=0,
                    )
                )

    for node_id in (0, 1, 2):
        sim.add_node(Echo(node_id, network))
    sim.run(1)
    # Both first-wave pings deliver before either reply.
    assert log == [(1, 0, 1), (2, 0, 1), (0, 1, 0), (0, 2, 0)]


def test_take_pending_hands_over_everything_once():
    network = Network()
    network.send(Ping(sender=0, recipient=1, round_no=0, hops_left=0))
    network.send(Ping(sender=1, recipient=0, round_no=0, hops_left=0))
    batch = network.take_pending()
    assert len(batch) == 2
    assert network.pending() == 0
    assert not network.take_pending()
