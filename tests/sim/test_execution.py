"""Tests for the pluggable execution policies.

The acceptance bar of the sharded-core refactor: a SerialPolicy run is
bit-identical to the pre-policy engine (golden numbers recorded from
the seed code on the same fixed-seed scenarios), and a ShardedPolicy
run reproduces the same per-node byte totals, message counts, and
operation counts at any shard count.
"""

import pytest

from repro.core import PagConfig, PagSession
from repro.sim.engine import Simulator
from repro.sim.execution import (
    SerialPolicy,
    ShardedPolicy,
    make_policy,
)
from repro.sim.faults import RandomLoss
from repro.sim.network import Network
from repro.sim.rng import SeedSequence
from repro.sim.trace import TraceRecorder

# Golden numbers measured on the pre-refactor engine (PR 1) for the
# fixed-seed fig7-style scenario: PagConfig.for_system_size(n, 300 Kbps),
# n nodes, r rounds.  The engine is a deterministic function of the
# seed, so these are exact integers, not tolerances.
GOLDEN = {
    (20, 8): {
        "messages_sent": 6103,
        "hashes": 45710,
        "total_bytes": 22239598,
        "node_bytes": {0: 1066593, 1: 1033468, 19: 1051146},
    },
    (30, 10): {
        "messages_sent": 11514,
        "hashes": 104836,
        "total_bytes": 61530104,
        "node_bytes": {0: 1356657, 1: 2578421, 29: 2390562},
    },
}


def _run(n, rounds, policy=None, drop_rule=None):
    config = PagConfig.for_system_size(n, stream_rate_kbps=300.0)
    session = PagSession.create(
        n, config=config, execution_policy=policy
    )
    if drop_rule is not None:
        session.simulator.network.add_drop_rule(drop_rule)
    session.run(rounds)
    meter = session.simulator.network.meter
    per_node = {
        nid: meter.node_bytes(nid)
        for nid in [0] + sorted(session.nodes)
    }
    return session, per_node


@pytest.mark.parametrize("n,rounds", sorted(GOLDEN))
def test_serial_policy_matches_pre_refactor_goldens(n, rounds):
    session, per_node = _run(n, rounds, SerialPolicy())
    golden = GOLDEN[(n, rounds)]
    assert session.simulator.network.messages_sent == golden["messages_sent"]
    assert session.context.hasher.operations == golden["hashes"]
    assert sum(per_node.values()) == golden["total_bytes"]
    for node, expected in golden["node_bytes"].items():
        assert per_node[node] == expected


@pytest.mark.parametrize("shards", [1, 3, 4, 7])
def test_sharded_policy_matches_serial_bytes(shards):
    _, serial = _run(20, 8, SerialPolicy())
    session, sharded = _run(20, 8, ShardedPolicy(shards=shards))
    assert sharded == serial
    golden = GOLDEN[(20, 8)]
    assert session.simulator.network.messages_sent == golden["messages_sent"]
    assert session.context.hasher.operations == golden["hashes"]


def test_sharded_policy_with_stateful_drop_rule_matches_serial():
    """Drop rules consume their RNG once per send in send order; the
    sharded merge must replay that exact order."""

    def loss():
        return RandomLoss(
            probability=0.15,
            kinds={"ack", "serve"},
            rng=SeedSequence(11).stream("loss"),
        )

    serial_rule = loss()
    _, serial = _run(20, 8, SerialPolicy(), drop_rule=serial_rule)
    sharded_rule = loss()
    session, sharded = _run(
        20, 8, ShardedPolicy(shards=4), drop_rule=sharded_rule
    )
    assert serial_rule.dropped > 0
    assert sharded_rule.dropped == serial_rule.dropped
    assert sharded == serial
    assert session.all_verdicts() == []


def test_sharded_policy_taps_see_all_traffic_in_order():
    config = PagConfig.for_system_size(16, stream_rate_kbps=300.0)
    runs = {}
    for name, policy in (
        ("serial", SerialPolicy()),
        ("sharded", ShardedPolicy(shards=3)),
    ):
        tap = TraceRecorder()
        s = PagSession.create(16, config=config, execution_policy=policy)
        s.simulator.network.add_tap(tap)
        s.run(6)
        runs[name] = tap
    assert len(runs["serial"]) == len(runs["sharded"])
    assert runs["serial"].kinds() == runs["sharded"].kinds()
    assert runs["serial"].total_bytes() == runs["sharded"].total_bytes()


def test_churn_mid_round_with_inflight_traffic_under_sharding():
    """A node removed by a round hook leaves in-flight traffic behind;
    the next rounds' sharded drains must drop deliveries to it silently
    while drop rules keep firing for everyone else."""

    def run(policy):
        session = PagSession.create(
            16,
            config=PagConfig.for_system_size(16, stream_rate_kbps=150.0),
            execution_policy=policy,
        )
        rule = RandomLoss(
            probability=0.1,
            kinds={"ack"},
            rng=SeedSequence(23).stream("loss"),
        )
        session.simulator.network.add_drop_rule(rule)

        def churn_hook(round_no):
            if round_no == 4:
                session.remove_node(7)

        session.simulator.add_round_hook(churn_hook)
        session.run(10)
        return session, rule

    serial_session, serial_rule = run(SerialPolicy())
    sharded_session, sharded_rule = run(ShardedPolicy(shards=5))
    assert 7 not in sharded_session.nodes
    assert serial_rule.dropped > 0
    assert sharded_rule.dropped == serial_rule.dropped
    # The departed node is convicted as unresponsive, nobody else is.
    for session in (serial_session, sharded_session):
        convicted = session.convicted_nodes()
        assert convicted <= {7}
    assert (
        sharded_session.simulator.network.messages_sent
        == serial_session.simulator.network.messages_sent
    )


def test_remove_node_unknown_id_raises_value_error():
    sim = Simulator(network=Network())
    with pytest.raises(ValueError, match="unknown node id 42"):
        sim.remove_node(42)


def test_session_remove_node_unknown_id_raises_value_error():
    session = PagSession.create(8)
    with pytest.raises(ValueError, match="unknown node id 99"):
        session.remove_node(99)


def test_make_policy():
    assert isinstance(make_policy("serial"), SerialPolicy)
    sharded = make_policy("sharded", shards=6)
    assert isinstance(sharded, ShardedPolicy)
    assert sharded.shards == 6
    with pytest.raises(ValueError, match="unknown execution policy"):
        make_policy("quantum")
    with pytest.raises(ValueError, match="shard count"):
        ShardedPolicy(shards=0)


def test_capture_guards():
    network = Network()
    network.begin_capture()
    with pytest.raises(RuntimeError, match="already active"):
        network.begin_capture()
    capture = network.release_capture()
    with pytest.raises(RuntimeError, match="no send capture"):
        network.release_capture()
    network.merge_captures([capture])  # empty capture merges cleanly
    assert network.pending() == 0
