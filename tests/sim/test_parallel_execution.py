"""Unit tests for the worker-backed parallel execution policy.

The differential suite (tests/differential/) proves bit-identity across
the whole registry; these tests pin the policy's mechanics — mode
resolution, the inline fallback, membership guards, the metadata merge
guard, reporting sync idempotence, and the golden numbers under real
worker pools.
"""

import pytest

from repro.core import PagConfig, PagSession
from repro.scenarios.spec import ScenarioSpec
from repro.sim.execution import (
    ParallelShardedPolicy,
    SerialPolicy,
    ShardedPolicy,
    make_policy,
)
from repro.sim.network import Network, RemoteSend

# Golden numbers measured on the pre-refactor engine (PR 1); the
# parallel backend must land on them exactly (see tests/sim/
# test_execution.py for the serial/sharded assertions on the same run).
GOLDEN_20_8 = {"messages_sent": 6103, "hashes": 45710}


def _spec(n=20, rounds=8):
    return ScenarioSpec(
        name="parallel-golden",
        nodes=n,
        rounds=rounds,
        warmup_rounds=2,
        stream_rate_kbps=300.0,
    )


@pytest.mark.parametrize("backend", ["serialized", "thread", "process"])
def test_parallel_policy_matches_pre_refactor_goldens(backend):
    policy = ParallelShardedPolicy(workers=3, backend=backend)
    spec = _spec()
    session = spec.build(policy)
    try:
        session.run(spec.rounds)
        policy.sync_session(session)
        assert (
            session.simulator.network.messages_sent
            == GOLDEN_20_8["messages_sent"]
        )
        assert session.context.hasher.operations == GOLDEN_20_8["hashes"]
        assert policy.stats.barriers > 0
        assert policy.stats.busy_cpu_seconds > 0
        assert policy.stats.critical_cpu_seconds <= (
            policy.stats.busy_cpu_seconds + 1e-9
        )
    finally:
        policy.close()


def test_sync_session_is_idempotent():
    policy = ParallelShardedPolicy(workers=2, backend="serialized")
    spec = _spec(n=10, rounds=4)
    session = spec.build(policy)
    try:
        session.run(spec.rounds)
        policy.sync_session(session)
        hashes = session.context.hasher.operations
        verdicts = session.all_verdicts()
        policy.sync_session(session)
        assert session.context.hasher.operations == hashes
        assert session.all_verdicts() == verdicts
    finally:
        policy.close()


def test_without_bootstrap_degrades_to_inline_sharding():
    """A hand-assembled session has no spec to rebuild replicas from;
    the policy must fall back to the in-process sharded loop and still
    match serial."""
    config = PagConfig.for_system_size(12, stream_rate_kbps=300.0)
    serial = PagSession.create(12, config=config)
    serial.run(5)
    policy = ParallelShardedPolicy(workers=4)
    session = PagSession.create(12, config=config, execution_policy=policy)
    session.run(5)
    assert policy.mode == "inline"
    assert "no scenario bootstrap" in policy.fallback_reason
    assert (
        session.simulator.network.meter.snapshot()
        == serial.simulator.network.meter.snapshot()
    )
    assert (
        session.context.hasher.operations
        == serial.context.hasher.operations
    )
    policy.sync_session(session)  # no-op in inline mode
    policy.close()


def test_adding_adhoc_nodes_after_start_is_rejected():
    """Only spec-declared arrivals can join a running parallel session:
    an arbitrary add fails inside the replica (no pending instance to
    admit) instead of silently diverging."""
    policy = ParallelShardedPolicy(workers=2, backend="serialized")
    spec = _spec(n=8, rounds=4)
    session = spec.build(policy)
    try:
        session.run(1)
        from repro.sim.node import SimNode

        with pytest.raises(ValueError, match="cannot admit"):
            session.simulator.add_node(
                SimNode(99, session.simulator.network)
            )
    finally:
        policy.close()


@pytest.mark.parametrize("backend", ["serialized", "thread", "process"])
def test_spec_declared_arrivals_are_mirrored_onto_replicas(backend):
    """A JoinEvent admits the same node on the parent and its owning
    worker replica; the run stays bit-identical to serial."""
    from repro.scenarios.spec import JoinEvent

    spec = ScenarioSpec(
        name="parallel-join",
        nodes=12,
        rounds=6,
        warmup_rounds=2,
        arrivals=(JoinEvent(after_round=2, node_id=7),),
    )
    reference = spec.run()
    policy = ParallelShardedPolicy(workers=3, backend=backend)
    result = spec.run(policy)
    assert policy.stats.admitted_nodes == 1
    assert result.node_kbps == reference.node_kbps
    assert result.messages_sent == reference.messages_sent
    assert result.total_bytes == reference.total_bytes
    assert result.verdicts == reference.verdicts
    # The arrival is absent before its round and active after it.
    meter = reference.session.simulator.network.meter
    assert meter.node_bytes(7, 0, 2, direction="up") == 0
    assert meter.node_bytes(7, 3, 5, direction="up") > 0


def test_policy_is_reusable_after_close():
    policy = ParallelShardedPolicy(workers=2, backend="serialized")
    results = []
    for _ in range(2):
        spec = _spec(n=10, rounds=4)
        results.append(spec.run(policy).messages_sent)
    assert results[0] == results[1]


def test_make_policy_parallel():
    policy = make_policy("parallel", workers=6)
    assert isinstance(policy, ParallelShardedPolicy)
    assert policy.workers == 6
    # workers defaults to the shards value when not given.
    assert make_policy("parallel", shards=3).workers == 3
    assert isinstance(make_policy("serial"), SerialPolicy)
    assert isinstance(make_policy("sharded", shards=2), ShardedPolicy)
    with pytest.raises(ValueError, match="unknown execution policy"):
        make_policy("quantum")
    with pytest.raises(ValueError, match="worker count"):
        ParallelShardedPolicy(workers=0)
    with pytest.raises(ValueError, match="unknown parallel backend"):
        ParallelShardedPolicy(backend="gpu")


def test_explicit_process_backend_with_unpicklable_bootstrap_raises():
    policy = ParallelShardedPolicy(workers=2, backend="process")

    class Unpicklable:
        def __call__(self):  # pragma: no cover - never built
            raise AssertionError

        def __reduce__(self):
            raise TypeError("cannot pickle this bootstrap")

    policy._bootstrap = Unpicklable()
    with pytest.raises(RuntimeError, match="process backend requested"):
        policy._ensure_started()
    policy.close()


def test_auto_backend_falls_back_to_threads_on_unpicklable_bootstrap():
    policy = ParallelShardedPolicy(workers=2, backend="auto")

    class UnpicklableSpecLike:
        def __call__(self):
            return ScenarioSpec(
                name="fallback", nodes=6, rounds=3, warmup_rounds=1
            ).build()

        def __reduce__(self):
            raise TypeError("cannot pickle this bootstrap")

    policy._bootstrap = UnpicklableSpecLike()
    assert policy._ensure_started()
    assert policy.mode == "thread"
    assert "not picklable" in policy.fallback_reason
    policy.close()


def test_merge_remote_refuses_taps_and_drop_rules():
    network = Network()
    network.add_tap(lambda message, size: None)
    with pytest.raises(RuntimeError, match="metadata-only merge"):
        network.merge_remote(
            [RemoteSend((1, 0, 0), sender=1, recipient=2, size=10)]
        )
    network = Network()
    network.add_drop_rule(lambda message: False)
    with pytest.raises(RuntimeError, match="metadata-only merge"):
        network.merge_remote([])


def test_merge_remote_meters_and_queues_in_order():
    network = Network()
    network.current_round = 3
    sends = [
        RemoteSend((1, 0, 0), sender=1, recipient=2, size=100),
        RemoteSend((1, 0, 1), sender=2, recipient=1, size=50),
    ]
    network.merge_remote(sends)
    assert network.messages_sent == 2
    assert network.pending() == 2
    assert network.pop() is sends[0]
    assert network.meter.node_bytes(1) == 150
    assert network.meter.node_series(1, "up") == [0, 0, 0, 100]


def test_stats_expose_shard_balance():
    policy = ParallelShardedPolicy(workers=2, backend="serialized")
    spec = _spec(n=10, rounds=4)
    spec.run(policy)
    stats = policy.stats
    assert set(stats.shard_cpu_seconds) == {0, 1}
    assert stats.imbalance() >= 1.0
    assert stats.wall_seconds >= stats.critical_cpu_seconds - 1e-9


def test_sync_reconciles_cache_hit_rates():
    """Satellite regression: PR 3's reporting sync grafts summed worker
    crypto-counter deltas onto the parent, so the hasher's cache buckets
    must travel too — otherwise ``cache_stats()`` divides parent-local
    hits by a denominator missing the grafted calls."""
    spec = _spec()
    policy = ParallelShardedPolicy(workers=2, backend="thread")
    session = spec.build(policy)
    try:
        session.run(spec.rounds)
        policy.sync_session(session)
        hasher = session.context.hasher
        stats = hasher.cache_stats()
        calls = (
            stats["memo_hits"]
            + stats["fixed_base_hits"]
            + stats["cold_powmods"]
            + stats["batched_lifts"]
        )
        assert calls == hasher.operations  # denominator covers the run
        assert 0.0 <= stats["memo_hit_rate"] <= 1.0
        assert 0.0 <= stats["fixed_base_hit_rate"] <= 1.0
        # The run did real hashing through the workers, so the grafted
        # buckets dominate the parent's setup-time tallies.
        assert calls == GOLDEN_20_8["hashes"]
    finally:
        policy.close()


def test_sync_cache_graft_is_idempotent():
    spec = _spec()
    policy = ParallelShardedPolicy(workers=2, backend="thread")
    session = spec.build(policy)
    try:
        session.run(spec.rounds)
        policy.sync_session(session)
        hasher = session.context.hasher
        first = (
            hasher.operations,
            hasher.memo_hits,
            hasher.fixed_base_hits,
            hasher.cold_powmods,
            hasher.batched_lifts,
            hasher.shared_ladder_seeds,
        )
        policy.sync_session(session)
        assert (
            hasher.operations,
            hasher.memo_hits,
            hasher.fixed_base_hits,
            hasher.cold_powmods,
            hasher.batched_lifts,
            hasher.shared_ladder_seeds,
        ) == first
    finally:
        policy.close()


@pytest.mark.parametrize("share", [True, False])
def test_shared_ladder_table_preserves_goldens(share):
    """The fork/ship-shared ladder table is a pure CPU saving: byte and
    operation accounting land on the pre-refactor goldens either way."""
    spec = _spec()
    policy = ParallelShardedPolicy(
        workers=3, backend="thread", share_ladders=share
    )
    session = spec.build(policy)
    try:
        table = policy._bootstrap.shared_ladders
        if share:
            assert table is not None and len(table) > 0
        else:
            assert table is None
        session.run(spec.rounds)
        policy.sync_session(session)
        assert (
            session.simulator.network.messages_sent
            == GOLDEN_20_8["messages_sent"]
        )
        assert session.context.hasher.operations == GOLDEN_20_8["hashes"]
        hasher = session.context.hasher
        if share:
            # Replicas answered fixed-base misses from the shared table;
            # the grafted seed counter proves it was actually consulted.
            assert hasher.shared_ladder_seeds > 0
        else:
            assert hasher.shared_ladder_seeds == 0
    finally:
        policy.close()


def test_shared_ladder_reduces_worker_table_builds():
    """The point of the table: workers seeded with precomputed ladders
    perform strictly fewer cold exponentiations (each avoided warm-up
    is a cold pow the replica no longer pays)."""
    cold = {}
    for share in (False, True):
        spec = _spec()
        policy = ParallelShardedPolicy(
            workers=3, backend="thread", share_ladders=share
        )
        session = spec.build(policy)
        try:
            session.run(spec.rounds)
            policy.sync_session(session)
            cold[share] = session.context.hasher.cold_powmods
        finally:
            policy.close()
    assert cold[True] < cold[False]
