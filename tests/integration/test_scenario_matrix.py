"""The whole scenario registry, run end to end at reduced scale.

One parametrised sweep replaces the per-experiment hand-wired session
setups: every registered simulation scenario must build, run, and
uphold the protocol's global invariants — honest scenarios never
convict, adversarial scenarios convict exactly their deviants, churn
scenarios keep streaming — under both execution policies.
"""

import pytest

from repro.scenarios import get_scenario, scenario_names
from repro.sim.execution import SerialPolicy, ShardedPolicy
from repro.sim.faults import OutageFault

#: Scale every scenario down to smoke size (the benchmarks exercise the
#: registry at figure scale).
SMALL = dict(nodes=16, rounds=8, warmup_rounds=2)

#: Scenarios whose declared membership/churn/arrival/ramp schedule must
#: not be shrunk (they name concrete node ids or concrete rounds;
#: fig10 is topology-only).
FIXED_SCALE = {
    "churn",
    "coalition-third",
    "fig10",
    "join-churn",
    "coalition-mixed",
    "rate-ramp",
}


def _small(name):
    spec = get_scenario(name)
    if name in FIXED_SCALE:
        return spec
    if spec.population:
        return spec.with_overrides(**SMALL, population=64)
    return spec.with_overrides(**SMALL)


@pytest.mark.parametrize("name", [n for n in scenario_names()
                                  if n != "fig10"])
def test_every_scenario_runs_and_measures(name):
    spec = _small(name)
    result = spec.run()
    assert result.mean_kbps > 0
    assert result.messages_sent > 0
    departed = {event.node_id for event in spec.churn}
    assert len(result.node_kbps) == spec.nodes - 1 - len(departed)
    deviants = set(spec.deviant_nodes())
    # Fault-schedule excusal, same rules as the fuzz harness: a node in
    # outage is observationally a refusal (legitimately convicted), and
    # its own verdicts cover rounds it never witnessed (discounted).
    outaged = {
        fault.node_id
        for fault in spec.fault_schedule
        if isinstance(fault, OutageFault)
    }
    trusted_convicted = {
        v.node
        for v in result.session.all_verdicts()
        if v.detected_by not in outaged
    }
    if deviants:
        # Soundness: only deviants (or churned/outaged nodes) convicted.
        assert trusted_convicted <= deviants | departed | outaged
    elif not spec.churn and spec.protocol == "pag":
        # No false positives on honest scenarios.
        assert result.verdicts == 0, result.convicted


@pytest.mark.parametrize("policy", [SerialPolicy(), ShardedPolicy(shards=4)])
def test_adversarial_scenarios_convict_under_both_policies(policy):
    result = _small("selfish").run(policy)
    deviants = set(_small("selfish").deviant_nodes())
    assert set(result.convicted) == deviants


def test_churn_scenario_streams_through_departures():
    result = get_scenario("churn").run(ShardedPolicy(shards=3))
    assert result.continuity > 0.9
    assert set(result.convicted) == {5, 11}
