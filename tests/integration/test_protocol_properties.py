"""Property-based tests over the whole protocol.

Hypothesis drives random (small) configurations through full sessions
and asserts the protocol's two global invariants:

* **no false positives** — an all-correct session never produces a
  verdict, whatever the topology, fanout, monitor count, rate or seed;
* **soundness of detection** — wherever a free-rider is placed, it is
  the node convicted.

These complement the fixed-seed integration tests with breadth.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.selfish import FreeRider
from repro.core import PagConfig, PagSession

configs = st.builds(
    PagConfig,
    fanout=st.integers(min_value=2, max_value=4),
    monitors_per_node=st.integers(min_value=2, max_value=4),
    stream_rate_kbps=st.sampled_from([40.0, 80.0, 150.0]),
    buffermap_depth=st.integers(min_value=3, max_value=8),
    seed=st.integers(min_value=0, max_value=2**16),
)


@given(configs, st.integers(min_value=12, max_value=20))
@settings(max_examples=8, deadline=None)
def test_honest_sessions_never_convict(config, n_nodes):
    session = PagSession.create(n_nodes, config=config)
    session.run(10)
    assert session.all_verdicts() == [], (
        config,
        [(v.node, v.reason) for v in session.all_verdicts()],
    )


@given(
    configs,
    st.integers(min_value=14, max_value=20),
    st.data(),
)
@settings(max_examples=6, deadline=None)
def test_free_rider_always_and_only_convicted(config, n_nodes, data):
    deviant = data.draw(
        st.integers(min_value=1, max_value=n_nodes - 1), label="deviant"
    )
    session = PagSession.create(
        n_nodes, config=config, behaviors={deviant: FreeRider()}
    )
    session.run(12)
    convicted = session.convicted_nodes()
    assert deviant in convicted, (config, deviant)
    assert convicted == {deviant}, (config, deviant, convicted)
