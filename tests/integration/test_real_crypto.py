"""End-to-end run with genuine RSA signatures and paper-size parameters.

Most tests use small in-simulation primes/moduli and token signatures
(the algebra is exact at any size; see DESIGN.md substitutions).  This
suite runs the real thing at small scale: RSA-signed messages and the
paper's 512-bit homomorphic modulus with 512-bit primes, to show the
protocol is not relying on any small-parameter artefact.
"""

import random

import pytest

from repro.adversary.selfish import FreeRider
from repro.core import PagConfig, PagSession, RsaSigner
from repro.crypto.keystore import KeyStore


def make_real_session(n=10, behaviors=None):
    config = PagConfig(
        sim_modulus_bits=512,  # the paper's modulus size
        sim_prime_bits=512,  # the paper's prime size
        stream_rate_kbps=40.0,  # keep the chunk count small
    )
    signer = RsaSigner(
        keystore=KeyStore(key_bits=512, rng=random.Random(77))
    )
    return PagSession.create(
        n, config=config, behaviors=behaviors, signer=signer
    )


@pytest.mark.slow
def test_honest_run_with_real_crypto():
    session = make_real_session()
    session.run(8)
    assert session.all_verdicts() == []
    assert session.mean_continuity() > 0.99
    report = session.crypto_report()
    assert report["signatures"] > 0
    assert report["verifications"] > 0


@pytest.mark.slow
def test_free_rider_detected_with_real_crypto():
    session = make_real_session(behaviors={3: FreeRider()})
    session.run(8)
    assert session.convicted_nodes() == {3}


@pytest.mark.slow
def test_paper_size_hash_values_fit_wire_size():
    """With a 512-bit modulus the real hash values fit the 64 bytes the
    wire model prices them at."""
    session = make_real_session()
    session.run(4)
    hasher = session.context.hasher
    assert hasher.modulus.bit_length() <= 512
    assert hasher.byte_size <= session.context.config.hash_bytes
