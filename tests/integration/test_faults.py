"""Omission failures: lost messages must not convict honest nodes.

Section IV-A: "using classical techniques we handle omission failures".
A lost Serve or Ack triggers the Fig. 3 accusation path, which
re-delivers the serve through the accused node's monitors and
exonerates everyone via Confirm.  These tests inject real loss and
assert both safety (no false conviction) and liveness (the stream still
plays).
"""

import pytest

from repro.core import PagSession
from repro.sim.faults import LinkCut, NodeOutage, RandomLoss
from repro.sim.rng import SeedSequence


def test_lost_acks_are_recovered_by_accusations():
    """Drop 20% of Acks: accusation -> probe -> Confirm exonerates."""
    session = PagSession.create(20)
    loss = RandomLoss(
        probability=0.2,
        kinds={"ack"},
        rng=SeedSequence(3).stream("loss"),
    )
    session.simulator.network.add_drop_rule(loss)
    session.run(14)
    assert loss.dropped > 0, "the fault injector never fired"
    assert session.all_verdicts() == [], [
        (v.node, v.reason) for v in session.all_verdicts()
    ]
    assert session.mean_continuity() > 0.99


def test_lost_serves_are_redelivered_through_probes():
    """Drop 10% of Serves: the receiver never acks (it got nothing),
    the server accuses, and the monitors' probe carries the content —
    the receiver still plays the stream."""
    session = PagSession.create(20)
    loss = RandomLoss(
        probability=0.1,
        kinds={"serve"},
        rng=SeedSequence(5).stream("loss"),
    )
    session.simulator.network.add_drop_rule(loss)
    session.run(14)
    assert loss.dropped > 0
    assert session.all_verdicts() == []
    assert session.mean_continuity() > 0.95


def test_lost_key_responses_handled():
    session = PagSession.create(20)
    loss = RandomLoss(
        probability=0.15,
        kinds={"key_response"},
        rng=SeedSequence(7).stream("loss"),
    )
    session.simulator.network.add_drop_rule(loss)
    session.run(14)
    assert loss.dropped > 0
    assert session.all_verdicts() == []
    assert session.mean_continuity() > 0.95


def test_cut_link_does_not_convict_either_endpoint():
    """A dead link between two honest nodes: every exchange across it
    fails, every accusation resolves through the probes."""
    session = PagSession.create(20)
    cut = LinkCut.between(3, 11)
    session.simulator.network.add_drop_rule(cut)
    session.run(14)
    assert cut.dropped > 0
    convicted = session.convicted_nodes()
    assert 3 not in convicted
    assert 11 not in convicted


def test_permanent_crash_is_convicted_as_unresponsive():
    """Accountability without failure detectors cannot distinguish a
    crash from a refusal: a permanently silent node is convicted, and
    the rest of the membership keeps streaming."""
    session = PagSession.create(20)
    outage = NodeOutage(node_id=9, first_round=3, last_round=10**9)
    session.simulator.network.add_drop_rule(outage)
    session.run(14)
    # The partitioned node's own monitor engine indicts everyone it can
    # no longer hear; a deployment discounts verdicts from unreachable
    # monitors, so judge from the live nodes' perspective.
    convicted = session.convicted_nodes(exclude_detectors={9})
    assert convicted == {9}
    # Chunks in flight through the crashed node at the crash instant can
    # be lost to individual nodes (PAG has no gap-repair pull; the
    # duplicate factor usually covers, but not always for a 20-node
    # membership).  The meaningful liveness claim: the healthy
    # membership keeps streaming on average.
    healthy = [n for n in session.nodes if n != 9]
    continuities = [
        session.playback_report(n).continuity for n in healthy
    ]
    assert sum(continuities) / len(continuities) > 0.9
    assert sorted(continuities)[len(continuities) // 2] > 0.95  # median


def test_churned_node_removed_mid_session():
    """A node that leaves outright (process killed) — same story."""
    session = PagSession.create(20)
    session.run(5)
    session.remove_node(13)
    session.run(9)
    assert 13 in session.convicted_nodes()
    assert session.convicted_nodes() == {13}


def test_cannot_remove_the_source():
    session = PagSession.create(12)
    with pytest.raises(ValueError):
        session.remove_node(0)


def test_combined_loss_and_cheating_still_isolates_the_cheater():
    """Noise must not mask a real free-rider, nor frame honest nodes."""
    from repro.adversary.selfish import FreeRider

    session = PagSession.create(20, behaviors={7: FreeRider()})
    loss = RandomLoss(
        probability=0.1,
        kinds={"ack"},
        rng=SeedSequence(11).stream("loss"),
    )
    session.simulator.network.add_drop_rule(loss)
    session.run(14)
    assert 7 in session.convicted_nodes()
    assert session.convicted_nodes() == {7}


class TestFaultInjectors:
    def test_random_loss_validation(self):
        with pytest.raises(ValueError):
            RandomLoss(probability=1.5)

    def test_random_loss_kind_filter(self):
        from repro.core.messages import KeyRequest

        loss = RandomLoss(
            probability=1.0, kinds={"ack"},
            rng=SeedSequence(1).stream("x"),
        )
        msg = KeyRequest(sender=1, recipient=2, round_no=0)
        assert not loss(msg)

    def test_outage_window(self):
        from repro.core.messages import KeyRequest

        outage = NodeOutage(node_id=1, first_round=5, last_round=6)
        early = KeyRequest(sender=1, recipient=2, round_no=4)
        inside = KeyRequest(sender=1, recipient=2, round_no=5)
        other = KeyRequest(sender=3, recipient=4, round_no=5)
        assert not outage(early)
        assert outage(inside)
        assert not outage(other)
