"""Tests for concurrent gossip sessions."""

import pytest

from repro.core import PagConfig
from repro.extensions.multisession import MultiSessionRunner


def test_requires_at_least_one_session():
    with pytest.raises(ValueError):
        MultiSessionRunner(n_nodes=12, session_configs=[])


def test_sessions_are_independent():
    runner = MultiSessionRunner(
        n_nodes=12,
        session_configs=[PagConfig(), PagConfig()],
    )
    runner.run(6)
    a, b = runner.sessions[0], runner.sessions[1]
    # Distinct seeds: different primes, different topologies.
    assert a.context.config.seed != b.context.config.seed
    assert a.context.hasher.modulus != b.context.hasher.modulus


def test_aggregate_bandwidth_sums_sessions():
    runner = MultiSessionRunner(
        n_nodes=12,
        session_configs=[
            PagConfig(stream_rate_kbps=80.0),
            PagConfig(stream_rate_kbps=300.0),
        ],
    )
    runner.run(10)
    report = runner.report()
    assert report.sessions == 2
    assert report.aggregate_mean_kbps == pytest.approx(
        sum(report.per_session_mean_kbps.values())
    )
    # The 300 Kbps channel costs more than the 80 Kbps one.
    assert (
        report.per_session_mean_kbps[1] > report.per_session_mean_kbps[0]
    )


def test_all_sessions_watchable_and_honest():
    runner = MultiSessionRunner(
        n_nodes=12,
        session_configs=[PagConfig(stream_rate_kbps=80.0)] * 3,
    )
    runner.run(12)
    report = runner.report()
    assert all(
        c > 0.99 for c in report.per_session_continuity.values()
    )
    assert report.total_verdicts == 0


def test_obfuscation_cost_is_session_multiplied():
    """The future-work pricing: joining k sessions costs ~k times one
    session — why the paper calls improving on obfuscation future work."""
    single = MultiSessionRunner(
        n_nodes=12, session_configs=[PagConfig(stream_rate_kbps=80.0)]
    )
    single.run(10)
    double = MultiSessionRunner(
        n_nodes=12,
        session_configs=[PagConfig(stream_rate_kbps=80.0)] * 2,
    )
    double.run(10)
    one = single.report().aggregate_mean_kbps
    two = double.report().aggregate_mean_kbps
    assert two == pytest.approx(2 * one, rel=0.2)
