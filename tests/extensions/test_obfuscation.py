"""Tests for the interest-obfuscation extension (the paper's future work)."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions.obfuscation import (
    ObfuscationPlan,
    anonymity_set_size,
    interest_posterior,
)

SESSIONS = [100, 200, 300, 400, 500]


def make_plan(cover=3, n_nodes=12, seed=1):
    interests = {
        node: SESSIONS[node % len(SESSIONS)] for node in range(n_nodes)
    }
    return ObfuscationPlan(
        sessions=SESSIONS,
        true_interest=interests,
        cover_factor=cover,
        seed=seed,
    )


class TestPlanConstruction:
    def test_memberships_include_true_interest(self):
        plan = make_plan()
        for node, interest in plan.true_interest.items():
            assert interest in plan.memberships[node]

    def test_membership_size_is_cover_factor(self):
        plan = make_plan(cover=3)
        assert all(len(s) == 3 for s in plan.memberships.values())

    def test_deterministic(self):
        assert make_plan(seed=9).memberships == make_plan(seed=9).memberships

    def test_validation(self):
        with pytest.raises(ValueError):
            make_plan(cover=0)
        with pytest.raises(ValueError):
            make_plan(cover=len(SESSIONS) + 1)
        with pytest.raises(ValueError):
            ObfuscationPlan(
                sessions=SESSIONS, true_interest={1: 999}, cover_factor=1
            )

    def test_bandwidth_multiplier(self):
        assert make_plan(cover=3).bandwidth_multiplier() == 3.0

    def test_session_members(self):
        plan = make_plan()
        members = plan.session_members(100)
        assert all(100 in plan.memberships[m] for m in members)


class TestAttackerInference:
    def test_uniform_posterior_is_one_over_k(self):
        plan = make_plan(cover=3)
        posteriors = interest_posterior(plan.observer_view())
        for _node, posterior in posteriors.items():
            assert all(
                p == pytest.approx(1 / 3) for p in posterior.values()
            )

    def test_no_obfuscation_reveals_interest(self):
        plan = make_plan(cover=1)
        posteriors = interest_posterior(plan.observer_view())
        for node, posterior in posteriors.items():
            assert posterior == {plan.true_interest[node]: 1.0}

    def test_anonymity_set_equals_cover_factor(self):
        plan = make_plan(cover=4)
        sizes = anonymity_set_size(plan.observer_view())
        assert all(s == pytest.approx(4.0) for s in sizes.values())

    def test_popularity_prior_shrinks_anonymity(self):
        """The known weakness: an unpopular decoy convinces nobody."""
        plan = make_plan(cover=3)
        popularity = {s: 1.0 for s in SESSIONS}
        popularity[plan.true_interest[0]] = 50.0  # the hit show
        sizes = anonymity_set_size(plan.observer_view(), popularity)
        assert sizes[0] < 3.0

    def test_empty_membership_rejected(self):
        with pytest.raises(ValueError):
            interest_posterior({1: set()})

    def test_degenerate_prior_falls_back_to_uniform(self):
        posterior = interest_posterior(
            {1: {100, 200}}, popularity={100: 0.0, 200: 0.0}
        )
        assert posterior[1][100] == pytest.approx(0.5)


@given(st.integers(min_value=1, max_value=5), st.integers(0, 2**16))
@settings(max_examples=30)
def test_anonymity_never_exceeds_cover_factor(cover, seed):
    plan = make_plan(cover=cover, seed=seed)
    sizes = anonymity_set_size(plan.observer_view())
    for size in sizes.values():
        assert size <= cover + 1e-9
        assert size >= 1.0 - 1e-9
