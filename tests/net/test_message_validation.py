"""Decode-side bounds checks, per message kind.

The validation satellite's contract: a crafted frame carrying negative
ids, an oversized length, a zero-length pair list, a non-positive
cofactor or any non-canonical integer is rejected by the codec —
*before* any signature verification or hash lifting could run on
attacker-controlled values.  Each test hand-crafts the hostile bytes
with the codec's own primitive writer, so the frame is structurally
plausible right up to the rejected field.
"""

import pytest

from repro.core.messages import (
    AttestationRelay,
    AttestationRelayBatch,
    KeyRequest,
)
from repro.net.wire import (
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    FrameAssembler,
    WireUnknownKindError,
    WireValidationError,
    WireVersionError,
    _Writer,
    decode_message,
    encode_message,
    frame,
)

from tests.net.fixtures import PAIR_A, SIGNED_ATT, session_messages


def _craft(kind_byte: int, body_writer) -> bytes:
    """[version][kind] + body written by ``body_writer(_Writer)``."""
    w = _Writer()
    w.u8(WIRE_VERSION)
    w.u8(kind_byte)
    body_writer(w)
    return w.getvalue()


def _zigzag_negative(value: int) -> int:
    """The raw varint a zigzag encoder would emit for a negative id."""
    assert value < 0
    return (-value << 1) - 1


# ---------------------------------------------------------------------------
# Envelope: version, kind, trailing bytes, frame bound
# ---------------------------------------------------------------------------


def test_foreign_version_byte_rejected():
    payload = encode_message(session_messages()[0])
    with pytest.raises(WireVersionError):
        decode_message(bytes([WIRE_VERSION + 1]) + payload[1:])


def test_unknown_kind_byte_rejected():
    with pytest.raises(WireUnknownKindError):
        decode_message(bytes([WIRE_VERSION, 63]))


def test_trailing_bytes_rejected():
    payload = encode_message(session_messages()[0])
    with pytest.raises(WireValidationError):
        decode_message(payload + b"\x00")


def test_oversized_payload_refused_at_frame_time():
    with pytest.raises(WireValidationError):
        frame(b"\x00" * (MAX_FRAME_BYTES + 1))


def test_oversized_length_prefix_refused_before_body():
    assembler = FrameAssembler()
    with pytest.raises(WireValidationError):
        # 4-byte header only: the bound check must not wait for a body.
        assembler.feed((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
    assert assembler.buffered <= 4


# ---------------------------------------------------------------------------
# Negative ids (zigzag smuggling) — encode and decode side
# ---------------------------------------------------------------------------


def test_negative_sender_id_rejected_on_decode():
    def body(w):
        w.varint(_zigzag_negative(-1))  # sender = -1
        w.id(11)
        w.id(4)
        w.bigint(0x11)

    with pytest.raises(WireValidationError, match="negative id"):
        decode_message(_craft(1, body))  # kind 1 = key_request


def test_negative_round_id_rejected_on_decode():
    def body(w):
        w.id(7)
        w.id(11)
        w.varint(_zigzag_negative(-3))  # round_no = -3
        w.bigint(0x11)

    with pytest.raises(WireValidationError, match="negative id"):
        decode_message(_craft(1, body))


def test_negative_id_refused_at_encode_time():
    message = KeyRequest(sender=-1, recipient=11, round_no=4)
    with pytest.raises(WireValidationError, match="negative id"):
        encode_message(message)


# ---------------------------------------------------------------------------
# attestation_relay (kind 7): pair-list bounds
# ---------------------------------------------------------------------------


def _relay_prelude(w):
    w.id(7)   # sender
    w.id(11)  # recipient
    w.id(4)   # round_no


def test_zero_length_pair_list_rejected():
    def body(w):
        _relay_prelude(w)
        w.id(7)      # declarer
        w.varint(0)  # empty pair list
        w.bigint(0x77)

    with pytest.raises(WireValidationError, match="zero-length"):
        decode_message(_craft(7, body))


def test_oversized_pair_count_rejected_before_reading_pairs():
    def body(w):
        _relay_prelude(w)
        w.id(7)
        w.varint(1 << 13)  # above _MAX_PAIRS; no pairs follow

    with pytest.raises(WireValidationError, match="exceeds bound"):
        decode_message(_craft(7, body))


def test_zero_cofactor_rejected():
    def body(w):
        _relay_prelude(w)
        w.id(7)
        w.varint(1)
        w.id(SIGNED_ATT.round_no)
        w.id(SIGNED_ATT.server)
        w.id(SIGNED_ATT.receiver)
        w.bigint(SIGNED_ATT.hash_forward)
        w.bigint(SIGNED_ATT.hash_ack_only)
        w.bigint(SIGNED_ATT.signature)
        w.bigint(0)  # cofactor = 0
        w.varint(0)
        w.bigint(0x77)

    with pytest.raises(WireValidationError, match="cofactor"):
        decode_message(_craft(7, body))


def test_single_pair_relay_must_come_from_its_declarer():
    def body(w):
        _relay_prelude(w)       # sender = 7 ...
        w.id(8)                 # ... but declarer = 8
        w.varint(1)
        w.id(SIGNED_ATT.round_no)
        w.id(SIGNED_ATT.server)
        w.id(SIGNED_ATT.receiver)
        w.bigint(SIGNED_ATT.hash_forward)
        w.bigint(SIGNED_ATT.hash_ack_only)
        w.bigint(SIGNED_ATT.signature)
        w.bigint(105)
        w.varint(3)
        w.bigint(0x77)

    with pytest.raises(WireValidationError, match="declarer"):
        decode_message(_craft(7, body))


def test_encoding_a_singleton_batch_refused():
    batch = AttestationRelayBatch(
        sender=7,
        recipient=11,
        round_no=4,
        declarer=7,
        pairs=(PAIR_A,),
        signature=0x78,
    )
    with pytest.raises(WireValidationError, match="at least two"):
        encode_message(batch)


def test_encoding_a_non_positive_cofactor_refused():
    relay = AttestationRelay(
        sender=7,
        recipient=11,
        round_no=4,
        attestation=SIGNED_ATT,
        cofactor=0,
        cofactor_prime_count=0,
        signature=0x77,
    )
    with pytest.raises(WireValidationError, match="cofactor"):
        encode_message(relay)


# ---------------------------------------------------------------------------
# key_response (kind 2): buffermap bounds
# ---------------------------------------------------------------------------


def test_buffermap_count_bound_enforced():
    def body(w):
        w.id(7)
        w.id(11)
        w.id(4)
        w.bigint(101)
        w.varint(1 << 21)  # above _MAX_BUFFERMAP

    with pytest.raises(WireValidationError, match="exceeds bound"):
        decode_message(_craft(2, body))


def test_buffermap_must_be_strictly_increasing():
    def body(w):
        w.id(7)
        w.id(11)
        w.id(4)
        w.bigint(101)
        w.varint(2)
        w.bigint(23)
        w.bigint(17)  # out of order
        w.bigint(0x22)

    with pytest.raises(WireValidationError, match="strictly increasing"):
        decode_message(_craft(2, body))


# ---------------------------------------------------------------------------
# serve (kind 3): entry bounds
# ---------------------------------------------------------------------------


def _serve_prelude(w):
    w.id(7)
    w.id(11)
    w.id(4)
    w.bigint(1155)  # key_prev
    w.varint(3)     # key_prime_count


def test_serve_entry_zero_count_rejected():
    def body(w):
        _serve_prelude(w)
        w.varint(1)   # one entry
        w.id(41)      # update uid
        w.id(3)
        w.id(9)
        w.varint(938)
        w.varint(0)
        w.varint(0)   # count = 0
        w.u8(1)

    with pytest.raises(WireValidationError, match="count"):
        decode_message(_craft(3, body))


def test_serve_entry_unknown_flags_rejected():
    def body(w):
        _serve_prelude(w)
        w.varint(1)
        w.id(41)
        w.id(3)
        w.id(9)
        w.varint(938)
        w.varint(0)
        w.varint(2)
        w.u8(4)  # flags beyond has_payload|ack_only

    with pytest.raises(WireValidationError, match="flags"):
        decode_message(_craft(3, body))


# ---------------------------------------------------------------------------
# Primitive canonicality
# ---------------------------------------------------------------------------


def test_non_canonical_varint_rejected():
    def body(w):
        w._parts.append(b"\x80\x00")  # varint 0 with a redundant group

    with pytest.raises(WireValidationError, match="non-canonical"):
        decode_message(_craft(1, body))


def test_bigint_with_leading_zero_rejected():
    def body(w):
        w.id(7)
        w.id(11)
        w.id(4)
        w.varint(2)
        w._parts.append(b"\x00\x11")  # 0x11 padded with a zero byte

    with pytest.raises(WireValidationError, match="leading zero"):
        decode_message(_craft(1, body))


def test_bigint_length_bound_enforced():
    def body(w):
        w.id(7)
        w.id(11)
        w.id(4)
        w.varint(4097)  # above _MAX_BIGINT_BYTES; no magnitude follows

    with pytest.raises(WireValidationError, match="exceeds bound"):
        decode_message(_craft(1, body))


def test_boolean_byte_must_be_zero_or_one():
    def body(w):
        w.id(7)
        w.id(11)
        w.id(4)
        w.id(9)     # successor
        w.id(3)     # exchange_round
        w.u8(2)     # has-ack flag, neither 0 nor 1

    with pytest.raises(WireValidationError, match="boolean"):
        decode_message(_craft(18, body))  # investigate_response


# ---------------------------------------------------------------------------
# Envelope ids, update sessions, barrier tallies: varint bounds added
# after `repro lint` WIRE202 flagged these reads as unbounded
# ---------------------------------------------------------------------------


def test_oversized_sender_id_rejected():
    def body(w):
        w.varint(1 << 50)  # raw zigzag id above _MAX_ID_RAW
        w.id(11)
        w.id(4)
        w.bigint(0x77)

    with pytest.raises(WireValidationError, match="exceeds bound"):
        decode_message(_craft(1, body))


def test_oversized_update_session_rejected():
    def body(w):
        w.id(7)
        w.id(11)
        w.id(4)
        w.bigint(5)        # key_prev
        w.varint(1)        # key_prime_count
        w.varint(1)        # one serve entry
        w.id(1)            # update uid
        w.id(0)            # round_created
        w.id(10)           # expiry_round
        w.varint(100)      # payload_bytes
        w.varint(1 << 17)  # session, above _MAX_SESSION

    with pytest.raises(WireValidationError, match="exceeds bound"):
        decode_message(_craft(3, body))  # serve


def test_oversized_step_done_tally_rejected():
    def body(w):
        w.varint(1)         # round_no
        w.varint(2)         # step
        w.varint(1 << 33)   # delivered, above _MAX_TALLY

    with pytest.raises(WireValidationError, match="exceeds bound"):
        decode_message(_craft(70, body))  # step_done (control)
