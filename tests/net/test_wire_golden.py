"""Cross-version golden pinning of the v1 wire layout.

``golden_wire_v1.json`` stores the exact hex encoding of one fixture
per kind.  The byte layout of protocol version 1 is a compatibility
contract between daemon builds: any change to the v1 encoder shows up
here as a diff against the pinned hex, and the right fix is a new
protocol version, not an edit to the golden file.

Regenerate (only when *adding* kinds) with::

    PYTHONPATH=src python tests/net/test_wire_golden.py --regen
"""

import json
import os

import pytest

from repro.net.wire import WIRE_VERSION, decode_message, encode_message

from tests.net.fixtures import all_messages

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden_wire_v1.json"
)


def _current() -> dict:
    entries = {}
    for index, message in enumerate(all_messages()):
        label = f"{index:02d}-{type(message).__name__}"
        entries[label] = encode_message(message).hex()
    return entries


def _load() -> dict:
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


def test_golden_file_matches_wire_version():
    assert _load()["version"] == WIRE_VERSION == 1


def test_every_fixture_is_pinned():
    golden = _load()["frames"]
    assert sorted(golden) == sorted(_current())


@pytest.mark.parametrize(
    "label", sorted(_current()), ids=lambda label: label
)
def test_v1_encoding_is_pinned(label):
    golden = _load()["frames"]
    current = _current()
    assert current[label] == golden[label], (
        f"{label}: the v1 byte layout changed; bump WIRE_VERSION "
        "instead of re-pinning"
    )


@pytest.mark.parametrize(
    "label", sorted(_current()), ids=lambda label: label
)
def test_pinned_bytes_decode_to_the_fixture(label):
    golden = _load()["frames"]
    index = int(label.split("-", 1)[0])
    expected = all_messages()[index]
    assert decode_message(bytes.fromhex(golden[label])) == expected


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        sys.exit("pass --regen to rewrite the golden file")
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(
            {"version": WIRE_VERSION, "frames": _current()},
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
    print(f"pinned {len(_current())} frames to {GOLDEN_PATH}")
