"""Deterministic example messages, one (or more) per wire kind.

Shared by the round-trip suite, the truncation fuzzers and the golden
cross-version pinning test: every registered kind byte appears here, so
a new schema that forgets to add a fixture fails the coverage check in
``test_wire.py``.
"""

from __future__ import annotations

from repro.core.messages import (
    Accusation,
    Ack,
    AckCopy,
    AckRelay,
    Attestation,
    AttestationRelay,
    AttestationRelayBatch,
    Confirm,
    DeclarationAck,
    InvestigateRequest,
    InvestigateResponse,
    KeyRequest,
    KeyResponse,
    MonitorBroadcast,
    MonitorProbe,
    Nack,
    ProbeAck,
    RelayPair,
    SelfCheck,
    Serve,
    ServeEntry,
    SignedAck,
    SignedAttestation,
)
from repro.gossip.updates import Update
from repro.net.wire import (
    CollectRequest,
    ControlRequest,
    ControlResponse,
    EventFrame,
    HealthReport,
    HealthRequest,
    JoinAccept,
    JoinReject,
    JoinRequest,
    PeerHello,
    RoundDone,
    RoundStart,
    SessionReport,
    Shutdown,
    StepDone,
    StepGo,
    StepMark,
    SubscribeRequest,
)

UPDATE = Update(
    uid=41, round_created=3, expiry_round=9, payload_bytes=938, session=0
)

ENTRY_PAYLOAD = ServeEntry(
    update=UPDATE, count=2, has_payload=True, ack_only=False
)
ENTRY_GHOST = ServeEntry(
    update=Update(
        uid=42, round_created=2, expiry_round=8, payload_bytes=938,
        session=0,
    ),
    count=1,
    has_payload=False,
    ack_only=True,
)

SIGNED_ACK = SignedAck(
    round_no=4,
    receiver=7,
    server=2,
    hash_total=0xDEADBEEFCAFE,
    key_prime_count=3,
    signature=0x1234567890AB,
)

SIGNED_ATT = SignedAttestation(
    round_no=4,
    server=2,
    receiver=7,
    hash_forward=0xFEEDFACE01,
    hash_ack_only=0x0BADF00D02,
    signature=0xABCDEF0123,
)

PAIR_A = RelayPair(
    attestation=SIGNED_ATT, cofactor=105, cofactor_prime_count=3
)
PAIR_B = RelayPair(
    attestation=SignedAttestation(
        round_no=4,
        server=5,
        receiver=7,
        hash_forward=0xC0FFEE03,
        hash_ack_only=1,
        signature=0x44556677,
    ),
    cofactor=77,
    cofactor_prime_count=2,
)


def session_messages():
    """One instance per session wire kind (kind bytes < 64)."""
    common = dict(sender=7, recipient=11, round_no=4)
    return [
        KeyRequest(signature=0x11, **common),
        KeyResponse(
            prime=101,
            buffermap=frozenset(
                (0x5EED0001 << 96 | 17, 0x5EED0002 << 96 | 23)
            ),
            signature=0x22,
            **common,
        ),
        Serve(
            key_prev=1155,
            key_prime_count=3,
            entries=(ENTRY_PAYLOAD, ENTRY_GHOST),
            signature=0x33,
            **common,
        ),
        Attestation(attestation=SIGNED_ATT, **common),
        Ack(ack=SIGNED_ACK, **common),
        AckCopy(ack=SIGNED_ACK, **common),
        AttestationRelay(
            attestation=SIGNED_ATT,
            cofactor=105,
            cofactor_prime_count=3,
            signature=0x77,
            **common,
        ),
        AttestationRelayBatch(
            declarer=3,
            pairs=(PAIR_A, PAIR_B),
            signature=0x78,
            **common,
        ),
        MonitorBroadcast(
            monitored=2,
            predecessor=5,
            lifted_forward=0xAA01,
            lifted_ack_only=0xAA02,
            ack=SIGNED_ACK,
            signature=0x88,
            **common,
        ),
        AckRelay(server=2, ack=SIGNED_ACK, signature=0x99, **common),
        DeclarationAck(
            server=2, exchange_round=3, signature=0xA0, **common
        ),
        SelfCheck(
            predecessor=5,
            lifted_forward=0xBB01,
            lifted_ack_only=0xBB02,
            signature=0xB0,
            **common,
        ),
        Accusation(
            accused=9,
            exchange_round=3,
            entries=(ENTRY_PAYLOAD,),
            key_prev=1155,
            key_prime_count=3,
            attestation=SIGNED_ATT,
            signature=0xC0,
            **common,
        ),
        Accusation(
            accused=9,
            exchange_round=3,
            entries=(),
            key_prev=1,
            key_prime_count=0,
            attestation=None,
            signature=0xC1,
            **common,
        ),
        MonitorProbe(
            accuser=6,
            exchange_round=3,
            entries=(ENTRY_PAYLOAD, ENTRY_GHOST),
            key_prev=1155,
            key_prime_count=3,
            signature=0xD0,
            **common,
        ),
        ProbeAck(ack=SIGNED_ACK, **common),
        Confirm(ack=SIGNED_ACK, signature=0xE0, **common),
        Nack(
            accused=9, accuser=6, exchange_round=3, signature=0xE1,
            **common,
        ),
        InvestigateRequest(
            successor=9, exchange_round=3, signature=0xF0, **common
        ),
        InvestigateResponse(
            successor=9,
            exchange_round=3,
            ack=SIGNED_ACK,
            accused_instead=False,
            signature=0xF1,
            **common,
        ),
        InvestigateResponse(
            successor=9,
            exchange_round=3,
            ack=None,
            accused_instead=True,
            signature=0xF2,
            **common,
        ),
    ]


def control_messages():
    """One instance per daemon control kind (kind bytes >= 64)."""
    return [
        JoinRequest(
            shard=1,
            shards=3,
            spec_json=b'{"name": "fig7"}',
            peers=("tcp://127.0.0.1:4001", "tcp://127.0.0.1:4002",
                   "tcp://127.0.0.1:4003"),
            batch_relays=True,
        ),
        JoinAccept(shard=1, nodes_owned=5, spec_digest="0123abcd0123abcd"),
        JoinReject(reason="scenario uses churn"),
        PeerHello(shard=2),
        RoundStart(round_no=4),
        StepMark(round_no=4, step=2),
        StepDone(
            round_no=4, step=2, delivered=12, sent_remote=3,
            pending_local=1,
        ),
        StepGo(round_no=4, step=3, proceed=True),
        RoundDone(round_no=4),
        CollectRequest(),
        SessionReport(payload=b'{"shard": 1}'),
        Shutdown(),
        HealthRequest(),
        HealthReport(
            state="running",
            scenario="fig7",
            current_round=5,
            total_rounds=12,
            nodes=60,
            subscribers=2,
            events_published=314,
            restarts=1,
        ),
        SubscribeRequest(kinds=("round", "verdict")),
        SubscribeRequest(kinds=()),
        EventFrame(seq=17, payload=b'{"kind": "round"}', dropped=3),
        ControlRequest(op="churn", node_id=5, arg=""),
        ControlRequest(op="pause", node_id=None, arg=""),
        ControlRequest(op="strategy", node_id=8, arg="free-rider"),
        ControlResponse(ok=True, detail="node 5 removed", state="paused"),
    ]


def all_messages():
    return session_messages() + control_messages()
