"""Wire codec round-trip and fuzz suite.

Three layers of assurance:

* deterministic fixtures — every registered kind byte round-trips
  exactly (``decode(encode(m)) == m``) and the fixture list covers the
  whole registry, so adding a schema without a fixture fails here;
* Hypothesis round-trips — randomised field values over every session
  kind, including the batched relay's pair lists;
* fuzzing — truncation at *every* byte offset, byte flips at every
  offset, and raw random payloads must never raise anything but a
  :class:`~repro.net.wire.WireError`.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import (
    Accusation,
    Ack,
    AttestationRelay,
    AttestationRelayBatch,
    InvestigateResponse,
    KeyResponse,
    RelayPair,
    Serve,
    ServeEntry,
    SignedAck,
    SignedAttestation,
)
from repro.gossip.updates import Update
from repro.net.wire import (
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    FrameAssembler,
    WireError,
    WireValidationError,
    decode_message,
    encodable,
    encode_message,
    frame,
    registered_kinds,
)

from tests.net.fixtures import all_messages, session_messages

MESSAGES = all_messages()
IDS = [type(m).__name__ for m in MESSAGES]


# ---------------------------------------------------------------------------
# Registry coverage and deterministic round-trips
# ---------------------------------------------------------------------------


def test_fixtures_cover_every_registered_kind():
    covered = {type(m).kind for m in MESSAGES}
    assert covered == set(registered_kinds())


def test_kind_bytes_split_session_and_control():
    kinds = registered_kinds()
    session = {type(m).kind for m in session_messages()}
    for kind, byte in kinds.items():
        if kind in session:
            assert byte < 64, f"session kind {kind} above control range"
        else:
            assert byte >= 64, f"control kind {kind} in session range"


@pytest.mark.parametrize("message", MESSAGES, ids=IDS)
def test_round_trip_is_exact(message):
    assert encodable(message)
    payload = encode_message(message)
    assert payload[0] == WIRE_VERSION
    decoded = decode_message(payload)
    assert decoded == message
    assert type(decoded) is type(message)


@pytest.mark.parametrize("message", MESSAGES, ids=IDS)
def test_encoding_is_deterministic(message):
    assert encode_message(message) == encode_message(message)


def test_framing_reassembles_under_arbitrary_chunking():
    stream = b"".join(frame(encode_message(m)) for m in MESSAGES)
    for chunk_size in (1, 3, 7, 64, len(stream)):
        assembler = FrameAssembler()
        payloads = []
        for start in range(0, len(stream), chunk_size):
            payloads.extend(
                assembler.feed(stream[start:start + chunk_size])
            )
        assert [decode_message(p) for p in payloads] == MESSAGES
        assert assembler.buffered == 0


def test_oversized_length_prefix_rejected_before_buffering():
    assembler = FrameAssembler()
    header = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
    with pytest.raises(WireValidationError):
        assembler.feed(header)


# ---------------------------------------------------------------------------
# Hypothesis round-trips
# ---------------------------------------------------------------------------

ids_st = st.integers(min_value=0, max_value=(1 << 40) - 1)
bigints_st = st.integers(min_value=0, max_value=(1 << 256) - 1)
counts_st = st.integers(min_value=0, max_value=1 << 10)

updates_st = st.builds(
    Update,
    uid=ids_st,
    round_created=ids_st,
    expiry_round=ids_st,
    payload_bytes=st.integers(min_value=0, max_value=1 << 20),
    session=st.integers(min_value=0, max_value=1 << 10),
)

entries_st = st.builds(
    ServeEntry,
    update=updates_st,
    count=st.integers(min_value=1, max_value=1 << 12),
    has_payload=st.booleans(),
    ack_only=st.booleans(),
)

signed_acks_st = st.builds(
    SignedAck,
    round_no=ids_st,
    receiver=ids_st,
    server=ids_st,
    hash_total=bigints_st,
    key_prime_count=counts_st,
    signature=bigints_st,
)

attestations_st = st.builds(
    SignedAttestation,
    round_no=ids_st,
    server=ids_st,
    receiver=ids_st,
    hash_forward=bigints_st,
    hash_ack_only=bigints_st,
    signature=bigints_st,
)

pairs_st = st.builds(
    RelayPair,
    attestation=attestations_st,
    cofactor=st.integers(min_value=1, max_value=(1 << 128) - 1),
    cofactor_prime_count=counts_st,
)


def _route(**fields):
    return dict(
        sender=fields.pop("sender"),
        recipient=fields.pop("recipient"),
        round_no=fields.pop("round_no"),
        **fields,
    )


@settings(max_examples=60, deadline=None)
@given(
    sender=ids_st,
    recipient=ids_st,
    round_no=ids_st,
    prime=bigints_st,
    buffermap=st.frozensets(
        st.integers(min_value=0, max_value=(1 << 160) - 1), max_size=24
    ),
    signature=bigints_st,
)
def test_key_response_round_trip(
    sender, recipient, round_no, prime, buffermap, signature
):
    message = KeyResponse(
        sender=sender,
        recipient=recipient,
        round_no=round_no,
        prime=prime,
        buffermap=buffermap,
        signature=signature,
    )
    assert decode_message(encode_message(message)) == message


@settings(max_examples=60, deadline=None)
@given(
    sender=ids_st,
    recipient=ids_st,
    round_no=ids_st,
    key_prev=bigints_st,
    key_prime_count=counts_st,
    entries=st.lists(entries_st, max_size=8).map(tuple),
    signature=bigints_st,
)
def test_serve_round_trip(
    sender, recipient, round_no, key_prev, key_prime_count, entries,
    signature,
):
    message = Serve(
        sender=sender,
        recipient=recipient,
        round_no=round_no,
        key_prev=key_prev,
        key_prime_count=key_prime_count,
        entries=entries,
        signature=signature,
    )
    assert decode_message(encode_message(message)) == message


@settings(max_examples=60, deadline=None)
@given(
    sender=ids_st,
    recipient=ids_st,
    round_no=ids_st,
    ack=signed_acks_st,
)
def test_ack_round_trip(sender, recipient, round_no, ack):
    message = Ack(
        sender=sender, recipient=recipient, round_no=round_no, ack=ack
    )
    assert decode_message(encode_message(message)) == message


@settings(max_examples=60, deadline=None)
@given(
    sender=ids_st,
    recipient=ids_st,
    round_no=ids_st,
    attestation=attestations_st,
    cofactor=st.integers(min_value=1, max_value=(1 << 128) - 1),
    cofactor_prime_count=counts_st,
    signature=bigints_st,
)
def test_relay_round_trip(
    sender, recipient, round_no, attestation, cofactor,
    cofactor_prime_count, signature,
):
    message = AttestationRelay(
        sender=sender,
        recipient=recipient,
        round_no=round_no,
        attestation=attestation,
        cofactor=cofactor,
        cofactor_prime_count=cofactor_prime_count,
        signature=signature,
    )
    decoded = decode_message(encode_message(message))
    assert type(decoded) is AttestationRelay
    assert decoded == message


@settings(max_examples=60, deadline=None)
@given(
    sender=ids_st,
    recipient=ids_st,
    round_no=ids_st,
    declarer=ids_st,
    pairs=st.lists(pairs_st, min_size=2, max_size=6).map(tuple),
    signature=bigints_st,
)
def test_relay_batch_round_trip(
    sender, recipient, round_no, declarer, pairs, signature
):
    message = AttestationRelayBatch(
        sender=sender,
        recipient=recipient,
        round_no=round_no,
        declarer=declarer,
        pairs=pairs,
        signature=signature,
    )
    decoded = decode_message(encode_message(message))
    assert type(decoded) is AttestationRelayBatch
    assert decoded == message


@settings(max_examples=60, deadline=None)
@given(
    sender=ids_st,
    recipient=ids_st,
    round_no=ids_st,
    accused=ids_st,
    exchange_round=ids_st,
    entries=st.lists(entries_st, max_size=4).map(tuple),
    key_prev=bigints_st,
    key_prime_count=counts_st,
    attestation=st.none() | attestations_st,
    signature=bigints_st,
)
def test_accusation_round_trip(
    sender, recipient, round_no, accused, exchange_round, entries,
    key_prev, key_prime_count, attestation, signature,
):
    message = Accusation(
        sender=sender,
        recipient=recipient,
        round_no=round_no,
        accused=accused,
        exchange_round=exchange_round,
        entries=entries,
        key_prev=key_prev,
        key_prime_count=key_prime_count,
        attestation=attestation,
        signature=signature,
    )
    assert decode_message(encode_message(message)) == message


@settings(max_examples=60, deadline=None)
@given(
    sender=ids_st,
    recipient=ids_st,
    round_no=ids_st,
    successor=ids_st,
    exchange_round=ids_st,
    ack=st.none() | signed_acks_st,
    accused_instead=st.booleans(),
    signature=bigints_st,
)
def test_investigate_response_round_trip(
    sender, recipient, round_no, successor, exchange_round, ack,
    accused_instead, signature,
):
    message = InvestigateResponse(
        sender=sender,
        recipient=recipient,
        round_no=round_no,
        successor=successor,
        exchange_round=exchange_round,
        ack=ack,
        accused_instead=accused_instead,
        signature=signature,
    )
    assert decode_message(encode_message(message)) == message


# ---------------------------------------------------------------------------
# Fuzz: truncation, bit rot, random garbage
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("message", MESSAGES, ids=IDS)
def test_every_truncation_offset_raises_wire_error(message):
    payload = encode_message(message)
    for cut in range(len(payload)):
        with pytest.raises(WireError):
            decode_message(payload[:cut])


@pytest.mark.parametrize("message", MESSAGES, ids=IDS)
def test_trailing_garbage_raises_wire_error(message):
    payload = encode_message(message)
    with pytest.raises(WireError):
        decode_message(payload + b"\x00")


@pytest.mark.parametrize("message", MESSAGES, ids=IDS)
def test_byte_flips_never_escape_wire_error(message):
    """Flipping any payload byte either still decodes (to *something*)
    or raises a WireError — never an unhandled exception reaching the
    engine."""
    payload = encode_message(message)
    for offset in range(len(payload)):
        for flip in (0x01, 0x80, 0xFF):
            mutated = bytearray(payload)
            mutated[offset] ^= flip
            try:
                decode_message(bytes(mutated))
            except WireError:
                pass
    # Unknown-kind and version flips must raise the *specific* errors:
    wrong_version = bytes([payload[0] ^ 0xFF]) + payload[1:]
    with pytest.raises(WireError):
        decode_message(wrong_version)


@settings(max_examples=300, deadline=None)
@given(data=st.binary(max_size=256))
def test_random_payloads_never_escape_wire_error(data):
    try:
        decode_message(data)
    except WireError:
        pass


@settings(max_examples=200, deadline=None)
@given(data=st.binary(max_size=256))
def test_random_stream_chunks_never_escape_wire_error(data):
    assembler = FrameAssembler()
    try:
        for payload in assembler.feed(data):
            decode_message(payload)
    except WireError:
        pass
