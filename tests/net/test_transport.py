"""Transport layer: tcp://, unix:// and mem:// behind one interface.

Each scheme is exercised through the same echo-server scenario, plus
the scheme-specific contracts: ephemeral TCP ports resolve in the
listener's endpoint, a clean close reads back as ``recv() -> None``,
and a mid-frame cut surfaces as a :class:`TransportError` rather than
a silently truncated payload.
"""

import asyncio
import os
import tempfile

import pytest

from repro.net.transport import (
    TransportError,
    connect,
    listen,
    reset_memory_transport,
)
from repro.net.wire import frame


@pytest.fixture(autouse=True)
def _clean_memory_table():
    reset_memory_transport()
    yield
    reset_memory_transport()


async def _echo_once(conn):
    payload = await conn.recv()
    if payload is not None:
        await conn.send(payload + b"!")
    await conn.close()


def _run(coro):
    return asyncio.run(coro)


async def _echo_scenario(listen_endpoint: str):
    listener = await listen(listen_endpoint, _echo_once)
    try:
        client = await connect(listener.endpoint)
        await client.send(b"ping")
        assert await client.recv() == b"ping!"
        assert await client.recv() is None  # server closed cleanly
        await client.close()
    finally:
        await listener.close()
    return listener.endpoint


def test_memory_echo():
    endpoint = _run(_echo_scenario("mem://echo-test"))
    assert endpoint == "mem://echo-test"


def test_tcp_echo_resolves_ephemeral_port():
    endpoint = _run(_echo_scenario("tcp://127.0.0.1:0"))
    port = int(endpoint.rpartition(":")[2])
    assert port > 0  # the listener reports the bound port, not 0


def test_unix_echo():
    with tempfile.TemporaryDirectory(prefix="repro-net-test-") as tmp:
        path = os.path.join(tmp, "daemon.sock")
        endpoint = _run(_echo_scenario(f"unix://{path}"))
        assert endpoint.endswith("daemon.sock")


def test_payloads_preserve_boundaries_and_order():
    async def scenario():
        received = []
        done = asyncio.Event()

        async def server(conn):
            while True:
                payload = await conn.recv()
                if payload is None:
                    break
                received.append(payload)
            done.set()

        listener = await listen("tcp://127.0.0.1:0", server)
        client = await connect(listener.endpoint)
        payloads = [bytes([i]) * (i * 37 + 1) for i in range(20)]
        for payload in payloads:
            await client.send(payload)
        await client.close()
        await asyncio.wait_for(done.wait(), timeout=5)
        await listener.close()
        assert received == payloads

    _run(scenario())


def test_mid_frame_cut_raises_transport_error():
    async def scenario():
        async def server(conn):
            # A 100-byte frame announced, 4 bytes delivered, then cut.
            partial = frame(b"x" * 100)[:8]
            conn._writer.write(partial)
            await conn._writer.drain()
            await conn.close()

        listener = await listen("tcp://127.0.0.1:0", server)
        client = await connect(listener.endpoint)
        with pytest.raises(TransportError, match="mid-frame"):
            await client.recv()
        await client.close()
        await listener.close()

    _run(scenario())


def test_send_after_close_raises():
    async def scenario():
        listener = await listen("mem://closed-send", _echo_once)
        client = await connect(listener.endpoint)
        await client.close()
        with pytest.raises(TransportError):
            await client.send(b"late")
        await listener.close()

    _run(scenario())


def test_connect_to_nothing_raises():
    async def scenario():
        with pytest.raises(TransportError):
            await connect("mem://nobody-home")
        with pytest.raises(TransportError):
            await connect("tcp://127.0.0.1:1")  # reserved, refused

    _run(scenario())


def test_bad_scheme_rejected():
    async def scenario():
        with pytest.raises(TransportError, match="not tcp"):
            await connect("carrier-pigeon://coop")

    _run(scenario())


def test_duplicate_memory_listener_rejected():
    async def scenario():
        listener = await listen("mem://dup", _echo_once)
        with pytest.raises(TransportError, match="already listening"):
            await listen("mem://dup", _echo_once)
        await listener.close()
        # After close the name is free again.
        second = await listen("mem://dup", _echo_once)
        await second.close()

    _run(scenario())
