"""Daemon runtime: coordinated multi-shard sessions vs the simulator.

The tentpole acceptance check in miniature: a fleet of in-process
daemons over the loopback transport must reach exactly the verdicts of
a serial simulator run of the same spec, with fm>1 attestation pairs
travelling as signed ``AttestationRelayBatch`` frames.  Plus the spec
hand-off plumbing: canonical JSON round-trip, digesting, shard
ownership arithmetic, and the unsupported-feature rejections.
"""

import asyncio

import pytest

from repro.net.daemon import (
    DaemonError,
    owned_node_ids,
    run_coordinated_session,
    spec_digest,
    spec_from_json,
    spec_to_json,
    validate_daemon_spec,
)
from repro.scenarios import get_scenario

from tests.differential.harness import record_scenario, small_spec


def _serial_verdicts(spec):
    """(node, reason, exchange_round) triples — the verdict identity.

    ``detected_by`` is excluded: when several monitors of a node all
    convict it, the session-level dedup keeps one representative, and
    *which* monitor that is depends on merge order (shard layout), not
    on what was detected.
    """
    record = record_scenario(spec, None, trace=False)
    return sorted({v[:3] for v in record.verdicts})


def _daemon_verdicts(result):
    return sorted({tuple(v[:3]) for v in result["verdicts"]})


# ---------------------------------------------------------------------------
# Spec hand-off
# ---------------------------------------------------------------------------


def test_spec_json_round_trip_is_exact():
    spec = small_spec("selfish")
    data = spec_to_json(spec)
    rebuilt = spec_from_json(data)
    assert spec_to_json(rebuilt) == data
    assert rebuilt.name == spec.name
    assert rebuilt.nodes == spec.nodes
    assert rebuilt.adversaries == spec.adversaries


def test_spec_digest_is_stable_and_content_sensitive():
    spec = small_spec("selfish")
    data = spec_to_json(spec)
    assert spec_digest(data) == spec_digest(data)
    other = spec_to_json(small_spec("selfish", seed=99))
    assert spec_digest(other) != spec_digest(data)


@pytest.mark.parametrize(
    "name, feature",
    [
        ("churn", "churn"),
        ("fig7-acting", "protocol"),
        ("fault-fuzz", "fault_schedule"),
        ("fig9-1m", "population"),
    ],
)
def test_unsupported_scenarios_are_rejected(name, feature):
    spec = get_scenario(name)
    with pytest.raises(DaemonError):
        validate_daemon_spec(spec)


def test_owned_node_ids_partition_the_membership():
    ids = list(range(100, 117))
    shards = 3
    owned = [owned_node_ids(ids, shard, shards) for shard in range(shards)]
    assert sorted(sum(owned, [])) == sorted(ids)
    assert all(
        not set(a) & set(b)
        for i, a in enumerate(owned)
        for b in owned[i + 1:]
    )


# ---------------------------------------------------------------------------
# Coordinated sessions over loopback
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("shards", [2, 3])
def test_sharded_session_matches_serial_verdicts(shards):
    spec = small_spec("selfish")
    serial = _serial_verdicts(spec)
    assert serial, "the selfish spec must convict its free-rider"
    result = asyncio.run(
        run_coordinated_session(spec, shards=shards, scheme="mem")
    )
    assert _daemon_verdicts(result) == serial
    assert result["shards"] == shards
    assert result["frames_sent"] > 0
    assert result["bytes_on_wire"] > 0
    # fm>1 pairs travelled as signed batches and folded at the monitors.
    assert result["relay_batches"] > 0
    assert result["relays_batched"] >= 2 * result["relay_batches"]


def test_unbatched_session_matches_too():
    """batch_relays=False sends one frame per pair; same verdicts."""
    spec = small_spec("selfish")
    serial = _serial_verdicts(spec)
    result = asyncio.run(
        run_coordinated_session(
            spec, shards=2, scheme="mem", batch_relays=False
        )
    )
    assert _daemon_verdicts(result) == serial
    assert result["relay_batches"] == 0


def test_clean_run_convicts_nobody():
    spec = small_spec("fig7")
    result = asyncio.run(
        run_coordinated_session(spec, shards=2, scheme="mem")
    )
    assert result["verdicts"] == []
    assert _serial_verdicts(spec) == []


def test_unix_socket_session_matches_serial_verdicts():
    """One non-loopback scheme end to end (TCP is covered by the CI
    smoke script with real separate processes)."""
    spec = small_spec("selfish")
    result = asyncio.run(
        run_coordinated_session(spec, shards=2, scheme="unix")
    )
    assert _daemon_verdicts(result) == _serial_verdicts(spec)
