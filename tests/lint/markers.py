"""Shared helpers for the lint-fixture tests.

Fixture files under tests/lint/fixtures/ annotate each line that must
produce a diagnostic with an end-of-line ``# expect[CODE]`` marker.
The analyzer tests parse those markers and require an exact match:
every marker yields its diagnostic, and no unmarked line yields any.
"""

import re
from pathlib import Path
from typing import List, Set, Tuple

from repro.lint.runner import lint_source

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]

_MARKER = re.compile(r"#\s*expect\[([A-Z]+\d+)\]")


def expected_markers(path: Path) -> Set[Tuple[int, str]]:
    pairs: Set[Tuple[int, str]] = set()
    text = path.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _MARKER.finditer(line):
            pairs.add((lineno, match.group(1)))
    return pairs


def lint_fixture(path: Path) -> List:
    return lint_source(str(path), path.read_text(encoding="utf-8"))


def found_pairs(path: Path) -> Set[Tuple[int, str]]:
    return {(d.line, d.code) for d in lint_fixture(path)}
