"""Pragma parsing, suppression, and PRG9xx hygiene rules."""

from repro.lint.pragmas import scan_pragmas
from repro.lint.runner import lint_source
from tests.lint.markers import FIXTURES, lint_fixture

FIXTURE = FIXTURES / "pragma_bad.py"


class TestHygieneFixture:
    def test_fixture_codes_and_lines(self):
        rows = {(d.line, d.code) for d in lint_fixture(FIXTURE)}
        assert rows == {
            (10, "PRG901"),
            (14, "PRG903"),
            (18, "PRG902"),
        }

    def test_suppression_applies_despite_missing_reason(self):
        # Line 10 carries allow[DET101] with no justification: the
        # DET101 finding is still suppressed, PRG901 takes its place.
        codes = {d.code for d in lint_fixture(FIXTURE)}
        assert "DET101" not in codes


class TestSuppression:
    def test_inline_pragma_suppresses_same_line(self):
        src = (
            "import random\n"
            "x = random.random()"
            "  # lint: allow[DET101] fixture needs raw entropy\n"
        )
        assert lint_source("s.py", src) == []

    def test_comment_only_pragma_covers_next_code_line(self):
        src = (
            "import random\n"
            "# lint: allow[DET101] fixture needs raw entropy\n"
            "x = random.random()\n"
        )
        assert lint_source("s.py", src) == []

    def test_pragma_does_not_leak_past_next_line(self):
        src = (
            "import random\n"
            "# lint: allow[DET101] only the first draw is exempt\n"
            "x = random.random()\n"
            "y = random.random()\n"
        )
        diags = lint_source("s.py", src)
        assert [(d.line, d.code) for d in diags] == [(4, "DET101")]

    def test_pragma_only_covers_listed_codes(self):
        src = (
            "import random\n"
            "x = random.random()"
            "  # lint: allow[DET103] wrong code listed\n"
        )
        codes = {d.code for d in lint_source("s.py", src)}
        assert "DET101" in codes

    def test_docstring_pragma_text_is_inert(self):
        # Pragma syntax inside a string literal is not a pragma: it
        # neither suppresses anything nor trips hygiene rules.
        src = (
            '"""Docs quoting # lint: allow[DET101] verbatim."""\n'
            "import random\n"
            "x = random.random()\n"
        )
        diags = lint_source("s.py", src)
        assert [(d.line, d.code) for d in diags] == [(3, "DET101")]


class TestScan:
    def test_scan_parses_codes_and_justification(self):
        src = "x = 1  # lint: allow[DET101,DET103] replayed fixture\n"
        table = scan_pragmas(src)
        assert table.suppresses(1, "DET101")
        assert table.suppresses(1, "DET103")
        assert not table.suppresses(1, "DET104")
        assert not table.suppresses(2, "DET101")
