"""DET1xx analyzer: fixture markers and targeted unit cases."""

import ast

from repro.lint.determinism import analyze_determinism
from tests.lint.markers import FIXTURES, expected_markers, found_pairs

FIXTURE = FIXTURES / "det_bad.py"


def _det(source: str):
    tree = ast.parse(source)
    return analyze_determinism("snippet.py", tree)


class TestDetFixture:
    def test_every_marker_fires(self):
        expected = expected_markers(FIXTURE)
        assert expected, "fixture lost its # expect[...] markers"
        found = found_pairs(FIXTURE)
        missing = expected - found
        assert not missing, f"markers without diagnostics: {missing}"

    def test_no_unmarked_diagnostics(self):
        extra = found_pairs(FIXTURE) - expected_markers(FIXTURE)
        assert not extra, f"diagnostics without markers: {extra}"

    def test_only_det_codes(self):
        codes = {code for _, code in found_pairs(FIXTURE)}
        assert codes
        assert all(code.startswith("DET") for code in codes)


class TestDetUnits:
    def test_seeded_rng_is_clean(self):
        src = "import random\nr = random.Random(42)\n"
        assert _det(src) == []

    def test_perf_counter_is_clean(self):
        src = "import time\nt = time.perf_counter()\n"
        assert _det(src) == []

    def test_sorted_discharges_set_iteration(self):
        src = "out = [v for v in sorted({3, 1, 2})]\n"
        assert _det(src) == []

    def test_order_free_reducer_discharges_set(self):
        src = "total = sum(v for v in {3, 1, 2})\n"
        assert _det(src) == []

    def test_set_loop_without_sink_is_clean(self):
        src = "for v in {3, 1, 2}:\n    print(v)\n"
        assert _det(src) == []

    def test_sorted_listdir_is_clean(self):
        src = "import os\nnames = sorted(os.listdir('.'))\n"
        assert _det(src) == []

    def test_diagnostic_columns_are_one_based(self):
        src = "import random\nx = random.random()\n"
        (diag,) = _det(src)
        assert diag.code == "DET101"
        assert diag.line == 2
        assert diag.col == 5
