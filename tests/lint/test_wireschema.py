"""WIRE2xx cross-check: live model is clean, mutations are caught."""

import copy

import pytest

from repro.lint.wireschema import (
    _scan_unbounded_varints,
    build_model,
    check_model,
    check_wire_schema,
)
from tests.lint.markers import REPO_ROOT


@pytest.fixture(scope="module")
def model():
    return build_model(REPO_ROOT)


class TestLiveModel:
    def test_repo_is_fully_covered(self, model):
        assert check_model(model) == []

    def test_entry_point_agrees(self):
        assert check_wire_schema(REPO_ROOT) == []

    def test_model_saw_the_real_registries(self, model):
        assert model.has_test_assets
        assert len(model.registered) >= 10
        assert len(model.message_classes) >= 10
        names = {name for _, name, _, _ in model.registered}
        assert "Serve" in names
        assert "KeyRequest" in names

    def test_no_unbounded_varints_in_wire(self, model):
        assert model.unbounded_varints == []


class TestMutations:
    def test_unregistered_message_trips_wire201(self, model):
        # Drop a session message (control frames like StepDone are
        # registered in wire.py but live outside messages.__all__).
        broken = copy.deepcopy(model)
        message_names = {n for n, _ in broken.message_classes}
        index = next(
            i
            for i, (_, name, _, _) in enumerate(broken.registered)
            if name in message_names
        )
        dropped = broken.registered.pop(index)
        diags = check_model(broken)
        assert any(
            d.code == "WIRE201" and repr(dropped[1]) in d.message
            for d in diags
        )

    def test_unbounded_varint_trips_wire202(self, model):
        broken = copy.deepcopy(model)
        broken.unbounded_varints.append((123, 9))
        diags = [d for d in check_model(broken) if d.code == "WIRE202"]
        assert len(diags) == 1
        assert diags[0].line == 123
        assert diags[0].col == 9

    def test_missing_fixture_trips_wire203(self, model):
        broken = copy.deepcopy(model)
        name = broken.registered[0][1]
        broken.fixture_classes.discard(name)
        diags = check_model(broken)
        assert any(
            d.code == "WIRE203" and repr(name) in d.message
            for d in diags
        )

    def test_missing_golden_frame_trips_wire204(self, model):
        broken = copy.deepcopy(model)
        name = broken.registered[0][1]
        broken.golden_classes.discard(name)
        diags = check_model(broken)
        assert any(
            d.code == "WIRE204" and repr(name) in d.message
            for d in diags
        )

    def test_stale_fixture_trips_wire205(self, model):
        broken = copy.deepcopy(model)
        broken.fixture_classes.add("GhostMessage")
        diags = check_model(broken)
        assert any(
            d.code == "WIRE205" and "GhostMessage" in d.message
            for d in diags
        )

    def test_stale_golden_frame_trips_wire205(self, model):
        broken = copy.deepcopy(model)
        broken.golden_classes.add("GhostFrame")
        diags = check_model(broken)
        assert any(
            d.code == "WIRE205" and "GhostFrame" in d.message
            for d in diags
        )

    def test_missing_assets_skips_coverage_rules(self, model):
        broken = copy.deepcopy(model)
        broken.fixture_classes.clear()
        broken.golden_classes.clear()
        broken.has_test_assets = False
        assert check_model(broken) == []


class TestVarintScan:
    def test_reader_call_without_bound_is_flagged(self):
        src = "def decode(r):\n    return r.varint()\n"
        assert _scan_unbounded_varints(src) == [(2, 12)]

    def test_bounded_reader_call_is_clean(self):
        src = "def decode(r):\n    return r.varint(bound=1 << 16)\n"
        assert _scan_unbounded_varints(src) == []

    def test_writer_call_is_clean(self):
        src = "def encode(w, n):\n    w.varint(n)\n"
        assert _scan_unbounded_varints(src) == []
