"""End-to-end ``repro lint``: clean tree, CLI wiring, mutations."""

import json
import os
import shutil
import subprocess
import sys

from repro.lint.diagnostics import RULES
from repro.lint.runner import lint_source, main
from tests.lint.markers import REPO_ROOT

SRC_TREE = REPO_ROOT / "src" / "repro"


def _cli(*argv, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True,
        text=True,
        cwd=str(cwd or REPO_ROOT),
        env=env,
    )


class TestCleanTree:
    def test_src_tree_is_clean(self, capsys):
        code = main([str(SRC_TREE), "--root", str(REPO_ROOT)])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "repro lint: all clean" in out

    def test_rules_listing(self, capsys):
        assert main(["--rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out

    def test_missing_path_exits_2(self, capsys):
        assert main(["no_such_file_xyz.py"]) == 2
        err = capsys.readouterr().err
        assert "no such path" in err

    def test_cli_verb_lists_rules(self):
        proc = _cli("--rules")
        assert proc.returncode == 0, proc.stderr
        assert "DET101" in proc.stdout
        assert "WIRE205" in proc.stdout


class TestMutations:
    """Seed a defect, assert the gate goes red with the right code."""

    def test_determinism_mutation_fails_cli(self, tmp_path):
        bad = tmp_path / "mutated.py"
        bad.write_text(
            "import random\n\n\ndef jitter(scale):\n"
            "    return scale * random.random()\n"
        )
        proc = _cli(str(bad), "--no-wire-check")
        assert proc.returncode == 1, proc.stdout
        assert "DET101" in proc.stdout
        assert "Found 1 finding(s)" in proc.stdout

    def test_parity_mutation_fails(self, tmp_path, capsys):
        bad = tmp_path / "mutated.py"
        bad.write_text(
            "_SLOT = {}\n\n\ndef _process_batch(rows):\n"
            "    _SLOT['last'] = rows\n"
        )
        code = main([str(bad), "--no-wire-check"])
        out = capsys.readouterr().out
        assert code == 1
        assert "PAR302" in out

    def test_dropped_golden_frame_fails(self, tmp_path, capsys):
        # A fake repo root whose golden file lost one pinned frame:
        # the cross-check must notice the uncovered wire kind.
        net_dir = tmp_path / "tests" / "net"
        net_dir.mkdir(parents=True)
        shutil.copy(
            REPO_ROOT / "tests" / "net" / "fixtures.py",
            net_dir / "fixtures.py",
        )
        golden_src = REPO_ROOT / "tests" / "net" / "golden_wire_v1.json"
        golden = json.loads(golden_src.read_text())
        frames = golden["frames"]
        dropped = next(k for k in frames if k.endswith("-Serve"))
        del frames[dropped]
        (net_dir / "golden_wire_v1.json").write_text(json.dumps(golden))
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        code = main([str(clean), "--root", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "WIRE204" in out
        assert "'Serve'" in out

    def test_unparseable_file_reports_prg903(self):
        diags = lint_source("broken.py", "def f(:\n")
        assert [d.code for d in diags] == ["PRG903"]
        assert "does not parse" in diags[0].message
