"""PAR3xx analyzer: fixture markers and scope-detection unit cases."""

import ast

from repro.lint.parity import analyze_parity
from tests.lint.markers import FIXTURES, expected_markers, found_pairs

FIXTURE = FIXTURES / "parity_bad.py"


def _par(source: str):
    tree = ast.parse(source)
    return analyze_parity("snippet.py", tree, source)


class TestParFixture:
    def test_every_marker_fires(self):
        expected = expected_markers(FIXTURE)
        assert expected, "fixture lost its # expect[...] markers"
        found = found_pairs(FIXTURE)
        missing = expected - found
        assert not missing, f"markers without diagnostics: {missing}"

    def test_no_unmarked_diagnostics(self):
        extra = found_pairs(FIXTURE) - expected_markers(FIXTURE)
        assert not extra, f"diagnostics without markers: {extra}"

    def test_only_par_codes(self):
        codes = {code for _, code in found_pairs(FIXTURE)}
        assert codes == {"PAR301", "PAR302"}


class TestParUnits:
    def test_parent_merge_outside_scope_is_clean(self):
        src = (
            "def collect(parent, rows):\n"
            "    parent.meter.record(rows)\n"
        )
        assert _par(src) == []

    def test_replica_local_state_is_clean(self):
        src = (
            "class _ReplicaWorker:\n"
            "    def step(self, item):\n"
            "        self.local.append(item)\n"
        )
        assert _par(src) == []

    def test_global_rebind_reported_once(self):
        src = (
            "_SLOT = None\n"
            "def _process_round(batch):\n"
            "    global _SLOT\n"
            "    _SLOT = batch\n"
        )
        diags = _par(src)
        assert [d.code for d in diags] == ["PAR302"]
        assert diags[0].line == 3

    def test_scope_marker_must_sit_on_def_line(self):
        # A standalone comment line above the def is not a marker.
        src = (
            "# lint: replica-scope\n"
            "def fan_out_batch(parent, item):\n"
            "    parent.queue.append(item)\n"
        )
        assert _par(src) == []

    def test_decorated_scope_marker(self):
        src = (
            "@wraps  # lint: replica-scope\n"
            "def fan_out(parent, item):\n"
            "    parent.queue.append(item)\n"
        )
        diags = _par(src)
        assert [d.code for d in diags] == ["PAR301"]
