"""Pragma hygiene violations for the PRG9xx rules.

Never imported, only parsed by tests/lint/test_pragmas.py.
"""

import random


def missing_justification():
    return random.random()  # lint: allow[DET101]


def unknown_code(x):
    return x + 1  # lint: allow[DET999] the code does not exist


def unused_pragma(x):
    return x * 2  # lint: allow[DET103] nothing here reads a clock
