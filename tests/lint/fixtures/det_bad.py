"""Deliberately non-deterministic snippets for the DET1xx analyzer.

Never imported, only parsed: tests/lint/test_determinism.py runs the
linter over this file and asserts that every ``# expect[CODE]`` marker
line yields exactly that diagnostic and nothing else.  This directory
is excluded from ruff — the bad patterns are the point.
"""

import datetime
import glob
import os
import random
import secrets
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path


def singleton_calls():
    a = random.random()  # expect[DET101]
    b = random.choice([1, 2])  # expect[DET101]
    random.shuffle([3, 4])  # expect[DET101]
    return a, b


def unseeded_rngs():
    r = random.Random()  # expect[DET102]
    s = random.SystemRandom()  # expect[DET102]
    return r, s


@dataclass
class BadDefault:
    rng: random.Random = field(
        default_factory=random.Random  # expect[DET102]
    )


def clocks():
    t = time.time()  # expect[DET103]
    n = time.time_ns()  # expect[DET103]
    d = datetime.datetime.now()  # expect[DET103]
    return t, n, d


def entropy():
    x = os.urandom(8)  # expect[DET104]
    y = uuid.uuid4()  # expect[DET104]
    z = secrets.token_bytes(4)  # expect[DET104]
    return x, y, z


def id_keyed(table, executor):
    table[id(executor)] = 1  # expect[DET105]
    table.get(id(executor))  # expect[DET105]
    return {id(executor): 2}  # expect[DET105]


def address_sort(items):
    return sorted(items, key=id)  # expect[DET105]


def set_into_sink(rows):
    out = []
    for item in {3, 1, 2}:  # expect[DET106]
        out.append(item)
    listed = list({9, 8})  # expect[DET106]
    joined = ",".join({"b", "a"})  # expect[DET106]
    return out, listed, joined


def comp_over_set(values):
    ordered = [v for v in set(values)]  # expect[DET106]
    fine = sorted(v for v in set(values))
    return ordered, fine


def fs_order(base: Path):
    names = list(os.listdir("."))  # expect[DET107]
    for path in base.iterdir():  # expect[DET107]
        names.append(path.name)
    globbed = [p for p in glob.glob("*.py")]  # expect[DET107]
    return names, globbed
