"""Deliberate parity violations for the PAR3xx analyzer.

Never imported, only parsed: tests/lint/test_parity.py asserts every
``# expect[CODE]`` marker line yields exactly that diagnostic.
"""

_WORKER_CACHE = {}


class _ReplicaWorker:
    def __init__(self, parent):
        self.parent = parent  # expect[PAR301]

    def merge_up(self, verdict):
        self.parent.verdicts.append(verdict)  # expect[PAR301]

    def overwrite(self, meter):
        self.parent.meter = meter  # expect[PAR301]

    def leak(self, key, value):
        _WORKER_CACHE[key] = value  # expect[PAR302]


def _process_step(batch):
    global _WORKER_CACHE  # expect[PAR302]
    _WORKER_CACHE = dict(batch)


def helper_outside_scope(parent):
    # Not a replica scope: the parent merging into itself is the
    # design, so this must NOT be flagged.
    parent.meter.record(1)


def marked_scope(coordinator, item):  # lint: replica-scope
    coordinator.queue.append(item)  # expect[PAR301]
