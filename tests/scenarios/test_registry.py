"""Tests for the declarative scenario subsystem."""

import pytest

from repro.scenarios import (
    AdversaryGroup,
    ChurnEvent,
    ScenarioSpec,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_names,
)
from repro.sim.execution import ShardedPolicy

PAPER_NAMES = {"fig7", "fig7-acting", "fig8", "fig9", "fig10",
               "table1", "table2"}


def test_paper_matrix_is_registered():
    assert PAPER_NAMES <= set(scenario_names())
    for name in scenario_names():
        spec = get_scenario(name)
        assert spec.name == name
        assert spec.description


def test_unknown_scenario_is_a_crisp_error():
    with pytest.raises(KeyError, match="unknown scenario 'fig99'"):
        get_scenario("fig99")


def test_overrides_do_not_mutate_the_registry():
    fig7 = get_scenario("fig7", nodes=240)
    assert fig7.nodes == 240
    assert get_scenario("fig7").nodes == 60
    # None overrides pass through untouched (CLI flags).
    assert get_scenario("fig7", nodes=None).nodes == 60


def test_register_refuses_silent_redefinition():
    spec = ScenarioSpec(name="test-dup", nodes=8, rounds=4, warmup_rounds=1)
    register_scenario(spec)
    try:
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(spec)
        register_scenario(spec, replace=True)
    finally:
        from repro.scenarios import registry

        registry._REGISTRY.pop("test-dup", None)


def test_spec_validation():
    with pytest.raises(ValueError, match="protocol"):
        ScenarioSpec(name="x", protocol="bittorrent")
    with pytest.raises(ValueError, match="warmup"):
        ScenarioSpec(name="x", rounds=4, warmup_rounds=4)
    with pytest.raises(ValueError, match="consumer ids"):
        ScenarioSpec(
            name="x", nodes=8, rounds=6, warmup_rounds=1,
            churn=(ChurnEvent(after_round=2, node_id=9),),
        )
    with pytest.raises(ValueError, match="never takes effect"):
        ScenarioSpec(
            name="x", nodes=8, rounds=6, warmup_rounds=1,
            churn=(ChurnEvent(after_round=5, node_id=2),),
        )
    with pytest.raises(ValueError, match="unknown adversary strategy"):
        AdversaryGroup(strategy="ddos")


def test_deviant_placement_is_deterministic_and_disjoint():
    spec = ScenarioSpec(
        name="mix",
        nodes=30,
        rounds=10,
        warmup_rounds=2,
        adversaries=(
            AdversaryGroup(strategy="free-rider", count=3),
            AdversaryGroup(strategy="silent-receiver", fraction=0.2),
        ),
    )
    deviants = spec.deviant_nodes()
    assert deviants == spec.deviant_nodes()  # pure function of the spec
    assert len(deviants) == 3 + int(29 * 0.2)
    assert all(1 <= node_id < 30 for node_id in deviants)
    assert sorted(deviants.values()).count("free-rider") == 3


def test_selfish_scenario_convicts_its_deviant():
    result = run_scenario("selfish", rounds=10)
    deviants = set(get_scenario("selfish").deviant_nodes())
    assert set(result.convicted) == deviants
    assert result.verdicts > 0
    assert result.continuity is not None


def test_churn_scenario_removes_nodes_and_convicts_them():
    result = run_scenario("churn", execution_policy=ShardedPolicy(shards=4))
    spec = get_scenario("churn")
    departed = {event.node_id for event in spec.churn}
    assert departed == {5, 11}
    assert not departed & set(result.session.nodes)
    assert set(result.convicted) == departed
    assert result.continuity > 0.9


def test_acting_scenario_runs_and_measures():
    result = run_scenario("fig7-acting", nodes=20, rounds=8)
    assert result.spec.protocol == "acting"
    assert result.mean_kbps > 300.0  # payload floor
    assert result.continuity is None  # PAG-only measurement
    assert len(result.cdf()) == 19


def test_scenario_result_cdf_and_summary():
    result = run_scenario("fig7", nodes=16, rounds=6)
    cdf = result.cdf()
    assert len(cdf) == 15
    assert cdf[-1][1] == pytest.approx(100.0)
    values = [v for v, _ in cdf]
    assert values == sorted(values)
    summary = result.summary()
    assert summary["scenario"] == "fig7"
    assert summary["mean_down_kbps"] == pytest.approx(
        result.mean_kbps, abs=0.1
    )


def test_pag_scenario_identical_under_sharded_policy():
    serial = run_scenario("fig7", nodes=16, rounds=6)
    sharded = run_scenario(
        "fig7", nodes=16, rounds=6,
        execution_policy=ShardedPolicy(shards=4),
    )
    assert sharded.node_kbps == serial.node_kbps
    assert sharded.messages_sent == serial.messages_sent
    assert sharded.total_bytes == serial.total_bytes


def test_oversubscribed_adversary_groups_rejected():
    """Groups claiming more nodes than there are consumers must raise,
    not spin forever in the placement loop."""
    with pytest.raises(ValueError, match="only 9 consumers"):
        ScenarioSpec(
            name="x", nodes=10, rounds=6, warmup_rounds=1,
            adversaries=(
                AdversaryGroup(strategy="free-rider", fraction=0.6),
                AdversaryGroup(strategy="silent-receiver", fraction=0.6),
            ),
        )


def test_acting_spec_honours_monitors_and_seed():
    spec = ScenarioSpec(
        name="acting-mon", protocol="acting", nodes=30, rounds=6,
        warmup_rounds=1, monitors_per_node=5, seed=77,
    )
    session = spec.build()
    assert session.config.monitors_per_node == 5
    assert session.config.seed == 77
    # Different seeds, different traffic.
    a = spec.run().messages_sent
    b = spec.with_overrides(seed=78).run().messages_sent
    assert a != b


def test_acting_churn_removes_node_from_session_membership():
    spec = ScenarioSpec(
        name="acting-churn", protocol="acting", nodes=16, rounds=10,
        warmup_rounds=2, churn=(ChurnEvent(after_round=4, node_id=6),),
    )
    result = spec.run()
    assert 6 not in result.session.nodes
    assert 6 not in result.node_kbps
    assert len(result.node_kbps) == 16 - 1 - 1


def test_build_pag_with_ablation_override():
    spec = get_scenario("fig8", stream_rate_kbps=150.0)
    session = spec.build_pag_with(buffermap_depth=2)
    assert session.context.config.buffermap_depth == 2
    assert session.context.config.stream_rate_kbps == 150.0
