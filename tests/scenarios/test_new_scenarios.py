"""The PR-5 scenario family: join churn, mixed coalitions, rate ramps.

Covers the new :class:`ScenarioSpec` surface (arrival schedules, the
per-node strategy map, rate steps) — validation, protocol semantics,
and CDF golden checks locking each registered scenario's measured
series (every number below is a deterministic function of the spec's
seed; the differential suite separately proves the same runs are
bit-identical under sharded and parallel execution).
"""

import dataclasses

import pytest

from repro.scenarios import (
    AdversaryGroup,
    ChurnEvent,
    JoinEvent,
    RateStep,
    get_scenario,
    run_scenario,
    scenario_names,
)
from repro.scenarios.spec import ScenarioSpec

# ---------------------------------------------------------------------------
# Spec validation
# ---------------------------------------------------------------------------


def test_new_family_is_registered():
    assert {"join-churn", "coalition-mixed", "rate-ramp"} <= set(
        scenario_names()
    )


def test_join_event_validation():
    with pytest.raises(ValueError, match="non-negative"):
        JoinEvent(after_round=-1, node_id=3)
    with pytest.raises(ValueError, match="outside the"):
        ScenarioSpec(
            name="x", nodes=8, rounds=6, warmup_rounds=1,
            arrivals=(JoinEvent(after_round=1, node_id=8),),
        )
    with pytest.raises(ValueError, match="never takes"):
        ScenarioSpec(
            name="x", nodes=8, rounds=6, warmup_rounds=1,
            arrivals=(JoinEvent(after_round=5, node_id=3),),
        )
    with pytest.raises(ValueError, match="two arrival events"):
        ScenarioSpec(
            name="x", nodes=8, rounds=6, warmup_rounds=1,
            arrivals=(JoinEvent(after_round=1, node_id=3),
                      JoinEvent(after_round=2, node_id=3)),
        )
    with pytest.raises(ValueError, match="PAG protocol only"):
        ScenarioSpec(
            name="x", protocol="acting", nodes=8, rounds=6,
            warmup_rounds=1,
            arrivals=(JoinEvent(after_round=1, node_id=3),),
        )
    # Leaving before joining is incoherent.
    with pytest.raises(ValueError, match="only joins after"):
        ScenarioSpec(
            name="x", nodes=8, rounds=6, warmup_rounds=1,
            arrivals=(JoinEvent(after_round=2, node_id=3),),
            churn=(ChurnEvent(after_round=2, node_id=3),),
        )
    # Join-then-leave is a valid lifecycle.
    ScenarioSpec(
        name="x", nodes=8, rounds=6, warmup_rounds=1,
        arrivals=(JoinEvent(after_round=1, node_id=3),),
        churn=(ChurnEvent(after_round=3, node_id=3),),
    )


def test_rate_step_validation():
    with pytest.raises(ValueError, match="positive rate"):
        RateStep(from_round=0, rate_kbps=0.0)
    with pytest.raises(ValueError, match="strictly increasing"):
        ScenarioSpec(
            name="x", nodes=8, rounds=6, warmup_rounds=1,
            rate_schedule=(RateStep(2, 100.0), RateStep(2, 200.0)),
        )
    with pytest.raises(ValueError, match="never takes"):
        ScenarioSpec(
            name="x", nodes=8, rounds=6, warmup_rounds=1,
            rate_schedule=(RateStep(6, 100.0),),
        )
    with pytest.raises(ValueError, match="PAG protocol only"):
        ScenarioSpec(
            name="x", protocol="acting", nodes=8, rounds=6,
            warmup_rounds=1, rate_schedule=(RateStep(2, 100.0),),
        )


def test_strategy_map_validation():
    with pytest.raises(ValueError, match="unknown strategy"):
        ScenarioSpec(
            name="x", nodes=8, rounds=6, warmup_rounds=1,
            node_strategies=((3, "bittorrent"),),
        )
    with pytest.raises(ValueError, match="appears twice"):
        ScenarioSpec(
            name="x", nodes=8, rounds=6, warmup_rounds=1,
            node_strategies=((3, "free-rider"), (3, "lying-monitor")),
        )
    with pytest.raises(ValueError, match="outside the"):
        ScenarioSpec(
            name="x", nodes=8, rounds=6, warmup_rounds=1,
            node_strategies=((0, "free-rider"),),
        )
    with pytest.raises(ValueError, match="claim"):
        ScenarioSpec(
            name="x", nodes=4, rounds=6, warmup_rounds=1,
            node_strategies=((1, "free-rider"), (2, "free-rider")),
            adversaries=(AdversaryGroup(strategy="free-rider", count=2),),
        )


def test_strategy_map_claims_ids_before_groups():
    spec = ScenarioSpec(
        name="x", nodes=10, rounds=6, warmup_rounds=1,
        node_strategies=((5, "partial-forwarder"),),
        adversaries=(AdversaryGroup(strategy="free-rider", count=2),),
    )
    deviants = spec.deviant_nodes()
    assert deviants[5] == "partial-forwarder"
    assert sum(1 for s in deviants.values() if s == "free-rider") == 2
    assert len(deviants) == 3


# ---------------------------------------------------------------------------
# Scenario semantics
# ---------------------------------------------------------------------------


def test_join_churn_arrivals_are_absent_then_present():
    result = run_scenario("join-churn")
    spec = result.spec
    meter = result.session.simulator.network.meter
    for event in spec.arrivals:
        # Not a participant before its round: it uploads nothing and is
        # never drawn as a successor (downloads before the join are
        # membership-lag monitor fan-out only).
        assert meter.node_bytes(
            event.node_id, 0, event.after_round, direction="up"
        ) == 0
        assert meter.node_bytes(
            event.node_id,
            event.after_round + 1,
            spec.rounds - 1,
            direction="up",
        ) > 0
        # Present in the final membership and the reported series.
        assert event.node_id in result.node_kbps
    # Only the crashed node is convicted — late arrival is not a fault.
    assert result.convicted == (4,)
    arrived = {event.node_id for event in spec.arrivals}
    assert not (arrived & set(result.convicted))


def test_join_churn_monitor_duty_starts_at_arrival():
    """A late-arriving monitor enters the declaration rotation and never
    issues verdicts about exchanges it did not observe."""
    result = run_scenario("join-churn")
    spec = result.spec
    joined = {e.node_id: e.after_round + 1 for e in spec.arrivals}
    for node_id, first_round in joined.items():
        node = result.session.nodes[node_id]
        assert node.monitor.first_round == first_round
        for verdict in node.monitor.verdicts:
            assert verdict.exchange_round > first_round
    # The arrivals do receive declaration traffic once present.
    meter = result.session.simulator.network.meter
    for node_id, first_round in joined.items():
        assert meter.node_bytes(
            node_id, first_round, spec.rounds - 1, direction="down"
        ) > 0


def test_coalition_mixed_convicts_every_deviant_strategy():
    result = run_scenario("coalition-mixed")
    deviants = result.spec.deviant_nodes()
    # The map pins three distinct strategies; the group adds two more.
    assert len(set(deviants.values())) == 4
    assert set(result.convicted) == set(deviants)


def test_rate_ramp_releases_track_the_schedule():
    result = run_scenario("rate-ramp")
    spec = result.spec
    schedule = result.session.source.schedule
    assert schedule.rate_for(0) == 150.0
    assert schedule.rate_for(4) == 300.0
    assert schedule.rate_for(11) == 600.0
    # The ramp must move real bytes: strictly more than the flat run.
    flat = dataclasses.replace(spec, rate_schedule=()).run()
    assert result.total_bytes > flat.total_bytes
    assert (
        result.session.source.total_released()
        > flat.session.source.total_released()
    )
    # An honest session: ramping is not a deviation.
    assert result.verdicts == 0


# ---------------------------------------------------------------------------
# CDF golden checks (deterministic: pure functions of the spec seed)
# ---------------------------------------------------------------------------

GOLDEN = {
    "join-churn": {
        # Declarations whose designated monitor never acked (here:
        # addressed to a not-yet-arrived monitor) now fan their single
        # retry out to every untried monitor — the obligation check
        # deadline leaves only one round to recover, so a one-per-round
        # rotation could convict an honest declarer's predecessors.
        # Slightly more redeclaration bytes, same verdicts.
        "mean": 1020.954,
        "picks": {25: 858.506, 50: 1026.326, 75: 1192.956, 100: 1342.060},
        "points": 18,
    },
    "coalition-mixed": {
        "mean": 1937.785,
        "picks": {25: 1284.778, 50: 1611.725, 75: 2267.817, 100: 3777.741},
        "points": 20,
    },
    "rate-ramp": {
        "mean": 920.575,
        "picks": {25: 804.016, 50: 892.360, 75: 1040.644, 100: 1295.616},
        "points": 19,
    },
}


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_cdf_golden(name):
    result = run_scenario(name)
    golden = GOLDEN[name]
    assert result.mean_kbps == pytest.approx(golden["mean"], abs=1e-3)
    cdf = result.cdf()
    assert len(cdf) == golden["points"]
    # The CDF is a valid distribution ending at 100%.
    assert cdf == sorted(cdf)
    assert cdf[-1][1] == pytest.approx(100.0)
    for target, value in golden["picks"].items():
        observed = next(v for v, p in cdf if p >= target)
        assert observed == pytest.approx(value, abs=1e-3), (
            f"{name}: CDF value at {target}% drifted"
        )


def test_session_start_monitors_still_check_round_zero():
    """Regression: the join-churn duty guard must not touch sessions
    without arrivals — every operation counter, including signature
    verifications (whose round-0 share the guard once swallowed),
    stays on the pre-join-churn golden."""
    spec = ScenarioSpec(
        name="ops-golden", nodes=14, rounds=8, warmup_rounds=2
    )
    result = spec.run()
    # verifications: one per monitor-side check; monitors now also
    # verify the declarer's outer relay signature (one per processed
    # AttestationRelay), which guards the cofactor against in-flight
    # corruption.
    assert result.session.crypto_report() == {
        "signatures": 3892,
        "verifications": 3820,
        "encryptions": 1008,
        "decryptions": 672,
        "homomorphic_hashes": 33206,
        "prime_generations": 336,
    }
    for node in result.session.nodes.values():
        assert node.monitor.first_round == 0


def test_goldens_cover_every_new_scenario():
    assert set(GOLDEN) == {"join-churn", "coalition-mixed", "rate-ramp"}
    for name in GOLDEN:
        assert get_scenario(name)  # still registered
