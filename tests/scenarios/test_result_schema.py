"""Golden pinning of the ScenarioResult summary schema (v1).

``golden_result_schema_v1.json`` stores, per payload variant, the
exact key set and JSON type of every field in
:meth:`ScenarioResult.summary` — the ``repro run --json`` contract the
CI scenario matrix and external dashboards consume.  Any change to the
payload shows up here as a diff against the pinned shape, and the
right fix is bumping :data:`RESULT_SCHEMA_VERSION` (and documenting
the change in ``docs/RESULTS.md``), not an edit to the golden file.

Regenerate (only alongside a version bump) with::

    PYTHONPATH=src:. python tests/scenarios/test_result_schema.py --regen
"""

import json
import os

import pytest

from repro import api
from repro.scenarios.spec import (
    RESULT_SCHEMA_VERSION,
    ScenarioSpec,
)
from repro.sim.faults import LossFault

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden_result_schema_v1.json"
)

EXCHANGE = ("key_request", "key_response", "serve", "attestation", "ack")


def _variants():
    """One summary payload per schema variant, smallest viable runs."""
    payloads = {}
    payloads["pag"] = api.run_scenario(
        "fig7", nodes=12, rounds=5, warmup_rounds=2
    ).summary()
    payloads["acting"] = api.run_scenario(
        "fig7-acting", nodes=12, rounds=5, warmup_rounds=2
    ).summary()
    payloads["faults"] = api.run_scenario(ScenarioSpec(
        name="schema-faults",
        nodes=12,
        rounds=5,
        warmup_rounds=2,
        fault_schedule=(
            LossFault(probability=0.05, kinds=EXCHANGE),
        ),
    )).summary()
    payloads["population"] = api.run_scenario(ScenarioSpec(
        name="schema-population",
        nodes=12,
        rounds=5,
        warmup_rounds=2,
        population=20,
    )).summary()
    # The `repro run --json` export adds the measured wall clock and
    # the Fig-7-style CDF on top of summary() — pin those keys too.
    export = dict(payloads["pag"])
    export["wall_seconds"] = 0.0
    export["cdf"] = []
    payloads["json-export"] = export
    return payloads


def _json_type(value):
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if isinstance(value, dict):
        return "object"
    if isinstance(value, (list, tuple)):
        return "array"
    raise TypeError(f"summary emitted a non-JSON type: {type(value)}")


def _shape(payload):
    return {key: _json_type(value) for key, value in payload.items()}


def _current():
    return {name: _shape(p) for name, p in _variants().items()}


def _load():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


def test_golden_file_matches_schema_version():
    assert _load()["schema"] == RESULT_SCHEMA_VERSION == 1


def test_every_variant_is_pinned():
    assert sorted(_load()["variants"]) == sorted(_current())


@pytest.fixture(scope="module")
def current():
    return _current()


@pytest.mark.parametrize(
    "variant", ["pag", "acting", "faults", "population", "json-export"]
)
def test_v1_summary_shape_is_pinned(variant, current):
    golden = _load()["variants"]
    assert current[variant] == golden[variant], (
        f"{variant}: the summary() payload shape changed; bump "
        "RESULT_SCHEMA_VERSION and document it in docs/RESULTS.md "
        "instead of re-pinning"
    )


def test_every_payload_carries_the_stamp():
    for name, payload in _variants().items():
        assert payload["schema"] == RESULT_SCHEMA_VERSION, name


def test_payloads_round_trip_json():
    for name, payload in _variants().items():
        assert json.loads(json.dumps(payload, sort_keys=True)), name


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        sys.exit("usage: test_result_schema.py --regen")
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(
            {
                "schema": RESULT_SCHEMA_VERSION,
                "variants": _current(),
            },
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
    print(f"regenerated {GOLDEN_PATH}")
