"""Validation and derivation rules for the population-tier spec knobs.

A misconfigured million-node run should fail in ``__post_init__`` with
a sentence pointing at the knob, not forty minutes in with a numpy
shape error.  These tests pin every refusal path, the
``cohort_equivalent`` derivation (the bit-identity oracle of the
differential suite), and the registered ``fig9-1m`` scenario shape.
"""

import os
import stat

import pytest

from repro.membership.views import default_fanout
from repro.scenarios import get_scenario
from repro.scenarios.spec import AdversaryGroup, ScenarioSpec
from repro.sim.faults import LossFault


def _spec(**kwargs):
    kwargs.setdefault("name", "pop-test")
    kwargs.setdefault("nodes", 16)
    kwargs.setdefault("rounds", 6)
    kwargs.setdefault("warmup_rounds", 2)
    return ScenarioSpec(**kwargs)


def test_population_must_exceed_cohort():
    with pytest.raises(ValueError, match="must exceed"):
        _spec(population=16)
    with pytest.raises(ValueError, match="must exceed"):
        _spec(population=10)
    _spec(population=17)  # smallest valid plane: one node


def test_population_policy_requires_population():
    with pytest.raises(ValueError, match="needs population"):
        _spec(policy="population")
    _spec(policy="population", population=100)


def test_spill_dir_requires_population(tmp_path):
    with pytest.raises(ValueError, match="population first"):
        _spec(population_spill_dir=str(tmp_path))


def test_spill_dir_must_exist(tmp_path):
    missing = str(tmp_path / "nope")
    with pytest.raises(ValueError, match="not an"):
        _spec(population=100, population_spill_dir=missing)
    # A file is not a directory either.
    file_path = tmp_path / "plain"
    file_path.write_text("x")
    with pytest.raises(ValueError, match="not an"):
        _spec(population=100, population_spill_dir=str(file_path))


@pytest.mark.skipif(os.geteuid() == 0, reason="root ignores mode bits")
def test_spill_dir_must_be_writable(tmp_path):
    locked = tmp_path / "locked"
    locked.mkdir()
    locked.chmod(stat.S_IRUSR | stat.S_IXUSR)
    try:
        with pytest.raises(ValueError, match="not writable"):
            _spec(population=100, population_spill_dir=str(locked))
    finally:
        locked.chmod(stat.S_IRWXU)


def test_population_is_pag_only():
    with pytest.raises(ValueError, match="PAG protocol"):
        _spec(protocol="acting", population=100)


def test_population_refuses_fault_schedules():
    with pytest.raises(ValueError, match="unfaulted"):
        _spec(
            population=100,
            fault_schedule=(LossFault(probability=0.1),),
        )


def test_deviants_must_fit_the_cohort():
    # Deviant ids and group sizes are checked against the cohort (the
    # plane is honest by construction): a strategy map naming an id
    # outside 1..nodes-1 fails regardless of the population size.
    with pytest.raises(ValueError):
        _spec(population=1000, node_strategies=((40, "free-rider"),))
    # In-cohort deviants are fine.
    spec = _spec(
        population=1000,
        adversaries=(AdversaryGroup(strategy="free-rider", count=1),),
    )
    assert spec.deviant_nodes()


def test_cohort_equivalent_strips_population_and_pins_fanout():
    spec = _spec(population=100_000, policy="population")
    cohort = spec.cohort_equivalent()
    assert cohort.population == 0
    assert cohort.policy is None
    assert cohort.population_spill_dir is None
    assert cohort.nodes == spec.nodes
    # The fanout the population derived is pinned, so the cohort builds
    # the same per-node exchange structure as the sampled cohort.
    assert cohort.fanout == default_fanout(100_000)
    # An explicit fanout is kept as-is.
    explicit = _spec(population=100_000, fanout=5).cohort_equivalent()
    assert explicit.fanout == 5
    # Non-population specs just lose the policy knob.
    plain = _spec(policy="parallel").cohort_equivalent()
    assert plain.policy is None
    assert plain.population == 0


def test_population_config_derives_fanout_from_population():
    spec = _spec(population=100_000)
    assert spec.build_config().fanout == default_fanout(100_000)
    # An explicit fanout wins over the derivation.
    assert _spec(population=100_000, fanout=4).build_config().fanout == 4


def test_fig9_1m_registration():
    spec = get_scenario("fig9-1m")
    assert spec.population == 1_000_000
    assert spec.policy == "population"
    assert spec.nodes == 120
    assert spec.rounds == 60
    assert spec.warmup_rounds == 4
    assert spec.protocol == "pag"
    # Derived, not pinned: fanout tracks the population scale.
    assert spec.fanout is None
    assert spec.build_config().fanout == default_fanout(1_000_000)
