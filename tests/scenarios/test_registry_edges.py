"""Scenario-registry edge cases through the execution policies.

Three previously-untested paths through the sharded/parallel drain:
a churn schedule that removes a *monitored* node while its monitors
still hold open obligations, an adversary mix that resolves to zero
deviants, and shard counts so high that every shard holds at most one
node.
"""

import pytest

from repro.scenarios import get_scenario, register_scenario, scenario_names
from repro.scenarios.spec import AdversaryGroup, ChurnEvent, ScenarioSpec
from repro.sim.execution import (
    ParallelShardedPolicy,
    SerialPolicy,
    ShardedPolicy,
)

from tests.differential.harness import record_scenario


def test_churn_removes_monitored_node_mid_stream_under_all_policies():
    """Node 4 leaves after round 3 with traffic in flight; its monitors
    must convict it as unresponsive (and nobody else) under every
    policy, with identical accounting."""
    spec = ScenarioSpec(
        name="edge-churn-monitored",
        nodes=12,
        rounds=8,
        warmup_rounds=2,
        churn=(ChurnEvent(after_round=3, node_id=4),),
    )
    monitors = spec.build_config()
    assert monitors.monitors_per_node >= 1  # node 4 is monitored
    reference = record_scenario(spec, SerialPolicy(), trace=True)
    assert reference.verdicts, "departed node should be convicted"
    assert {v[0] for v in reference.verdicts} == {4}
    for policy in (
        ShardedPolicy(shards=5),
        ParallelShardedPolicy(workers=3, backend="thread"),
        ParallelShardedPolicy(workers=2, backend="process"),
    ):
        record = record_scenario(spec, policy, trace=True)
        assert record == reference, f"mismatch in {record.diff(reference)}"


def test_zero_adversary_mix_resolves_to_honest_run():
    """A fractional adversary group too small to claim a single node is
    a legal spec and behaves exactly like the honest scenario."""
    spec = ScenarioSpec(
        name="edge-zero-adversaries",
        nodes=10,
        rounds=5,
        warmup_rounds=1,
        adversaries=(
            AdversaryGroup(strategy="free-rider", fraction=0.05),
        ),
    )
    assert spec.deviant_nodes() == {}
    honest = ScenarioSpec(
        name="edge-honest", nodes=10, rounds=5, warmup_rounds=1
    )
    reference = record_scenario(honest, SerialPolicy(), trace=True)
    for policy in (
        SerialPolicy(),
        ShardedPolicy(shards=4),
        ParallelShardedPolicy(workers=2, backend="thread"),
    ):
        record = record_scenario(spec, policy, trace=True)
        assert record.verdicts == []
        assert record == reference, f"mismatch in {record.diff(reference)}"


def test_single_node_shards_match_serial():
    """More shards than nodes: every shard holds at most one node (most
    hold none).  Degenerate partitions must still merge exactly."""
    spec = ScenarioSpec(
        name="edge-single-node-shards",
        nodes=8,
        rounds=5,
        warmup_rounds=1,
    )
    reference = record_scenario(spec, SerialPolicy(), trace=True)
    for policy in (
        ShardedPolicy(shards=8),
        ShardedPolicy(shards=23),
        ParallelShardedPolicy(workers=8, backend="serialized"),
        ParallelShardedPolicy(workers=11, backend="thread"),
    ):
        record = record_scenario(spec, policy, trace=True)
        assert record == reference, f"mismatch in {record.diff(reference)}"


def test_registered_parallel_scenario_declares_policy():
    """The registry's worker-backed entry resolves to a parallel policy
    and stays overridable."""
    assert "fig9-parallel" in scenario_names()
    spec = get_scenario("fig9-parallel")
    assert spec.policy == "parallel"
    policy = spec.make_policy()
    assert isinstance(policy, ParallelShardedPolicy)
    assert policy.workers == spec.workers
    overridden = get_scenario("fig9-parallel", policy="serial")
    assert isinstance(overridden.make_policy(), SerialPolicy)


def test_registry_rejects_bad_policy_knobs():
    with pytest.raises(ValueError, match="unknown execution policy"):
        ScenarioSpec(name="bad", nodes=4, rounds=2, warmup_rounds=0,
                     policy="quantum")
    with pytest.raises(ValueError, match="worker count"):
        ScenarioSpec(name="bad", nodes=4, rounds=2, warmup_rounds=0,
                     workers=0)
    with pytest.raises(ValueError, match="already registered"):
        register_scenario(get_scenario("fig9"))
