"""Tests for the tamper-evident secure log."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.securelog import (
    LOG_ENTRY_WIRE_BYTES,
    SecureLog,
    verify_segment,
)


def make_log(n=5):
    log = SecureLog(node_id=1)
    for i in range(n):
        kind = "SND" if i % 2 == 0 else "RCV"
        log.append(kind, round_no=i, partner=10 + i, update_uids=[i, i + 1])
    return log


class TestAppend:
    def test_sequencing(self):
        log = make_log(3)
        assert [e.seq for e in log.entries] == [0, 1, 2]
        assert len(log) == 3

    def test_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            SecureLog(1).append("XXX", 0, 2, [])

    def test_chain_links(self):
        log = make_log(3)
        assert log.entries[1].prev_hash == log.entries[0].chain_hash()
        assert log.entries[2].prev_hash == log.entries[1].chain_hash()

    def test_uids_stored_sorted(self):
        log = SecureLog(1)
        entry = log.append("SND", 0, 2, [5, 1, 3])
        assert entry.update_uids == (1, 3, 5)


class TestVerify:
    def test_honest_segment_verifies(self):
        log = make_log(6)
        assert verify_segment(log.segment(0))
        assert verify_segment(log.segment(3))

    def test_tampered_content_detected(self):
        log = make_log(4)
        entries = log.segment(0)
        forged = dataclasses.replace(entries[1], partner=999)
        assert not verify_segment(
            [entries[0], forged, entries[2], entries[3]]
        )

    def test_dropped_entry_detected(self):
        log = make_log(4)
        entries = log.segment(0)
        assert not verify_segment([entries[0], entries[2], entries[3]])

    def test_expected_prev_anchors_history(self):
        """An authenticator pins the chain: the node cannot rewrite
        entries before a head it already committed to."""
        log = make_log(4)
        head_after_2 = log.entries[1].chain_hash()
        assert verify_segment(log.segment(2), expected_prev=head_after_2)
        assert not verify_segment(
            log.segment(2), expected_prev=b"\x00" * 32
        )

    def test_empty_segment_ok(self):
        assert verify_segment([])


def test_segment_wire_bytes():
    log = make_log(5)
    assert log.segment_wire_bytes(2) == 3 * LOG_ENTRY_WIRE_BYTES


def test_entries_for_round():
    log = make_log(5)
    assert [e.seq for e in log.entries_for_round(2)] == [2]


@given(st.lists(st.integers(0, 100), min_size=1, max_size=20))
@settings(max_examples=40)
def test_chain_property_any_suffix_verifies(uids):
    log = SecureLog(1)
    for i, uid in enumerate(uids):
        log.append("SND" if uid % 2 else "RCV", i, uid % 7, [uid])
    for start in range(len(uids)):
        assert verify_segment(log.segment(start))
