"""Tests for the AcTinG baseline."""

import pytest

from repro.baselines.acting import ActingConfig, ActingSession


@pytest.fixture(scope="module")
def honest_session():
    s = ActingSession.create(30)
    s.run(15)
    return s


class TestHonestActing:
    def test_no_false_positives(self, honest_session):
        assert honest_session.all_verdicts() == []

    def test_content_disseminates(self, honest_session):
        released = {
            u.uid
            for u in honest_session.source.released
            if u.round_created <= 6
        }
        delivered = sum(
            1
            for node in honest_session.nodes.values()
            for uid in released
            if node.store.ever_received(uid)
        )
        coverage = delivered / (len(released) * len(honest_session.nodes))
        assert coverage > 0.9

    def test_bandwidth_near_paper_value(self, honest_session):
        """Paper: AcTinG averages ~460 Kbps for a 300 Kbps stream."""
        mean_down = honest_session.mean_bandwidth_kbps(5, "down")
        assert 300 < mean_down < 700

    def test_no_duplicate_payload_across_rounds(self, honest_session):
        """The request negotiation prevents cross-round duplicates; only
        same-round simultaneous proposals cause extra copies."""
        for node in list(honest_session.nodes.values())[:5]:
            for uid in list(node.store._arrival_round)[:50]:
                assert node.store.receipt_count(uid) <= 4

    def test_logs_grow_and_chain_verifies(self, honest_session):
        from repro.baselines.securelog import verify_segment

        node = honest_session.nodes[3]
        assert len(node.log) > 0
        assert verify_segment(node.log.segment(0))


class TestSelfishActing:
    def test_free_rider_is_convicted(self):
        s = ActingSession.create(30, selfish_nodes={7})
        s.run(15)
        assert s.convicted_nodes() == {7}

    def test_free_rider_saves_bandwidth(self):
        honest = ActingSession.create(30)
        honest.run(12)
        selfish = ActingSession.create(30, selfish_nodes={7})
        selfish.run(12)
        up_honest = honest.simulator.network.meter.node_kbps(
            7, direction="up"
        )
        up_selfish = selfish.simulator.network.meter.node_kbps(
            7, direction="up"
        )
        assert up_selfish < up_honest

    def test_multiple_free_riders(self):
        s = ActingSession.create(30, selfish_nodes={5, 11, 17})
        s.run(15)
        assert s.convicted_nodes() == {5, 11, 17}

    def test_log_forger_caught_by_chain_verification(self):
        """A cheater shipping a rewritten log segment: the hash chain
        commits to the deleted entries, so the first audit convicts."""
        s = ActingSession.create(30, forging_nodes={9})
        s.run(15)
        assert 9 in s.convicted_nodes()
        assert s.convicted_nodes() == {9}
        reasons = [
            v.evidence
            for v in s.all_verdicts()
            if v.node == 9 and "chain" in v.evidence
        ]
        assert reasons, "conviction must come from chain verification"


class TestPrivacyLeak:
    def test_audits_expose_interactions_in_clear(self):
        """The reason PAG exists: an AcTinG auditor reads partner ids
        and update ids straight out of the audited log."""
        s = ActingSession.create(20)
        s.run(12)
        leaked = False
        for node in s.nodes.values():
            for _audited, entries in node.audited_knowledge.items():
                for entry in entries:
                    if entry.update_uids:
                        leaked = True
                        assert isinstance(entry.partner, int)
        assert leaked, "audits never transferred any interaction record"


def test_acting_config_defaults():
    cfg = ActingConfig()
    assert cfg.fanout == 3
    assert 0 < cfg.audit_probability <= 1
