"""Tests for the RAC baseline and its capacity model."""

import pytest

from repro.baselines.rac import (
    RacConfig,
    RacSession,
    rac_max_payload_kbps,
    rac_per_node_kbps,
)


class TestRacSimulation:
    @pytest.fixture(scope="class")
    def session(self):
        s = RacSession.create(15)
        s.run(8)
        return s

    def test_payload_reaches_everyone(self, session):
        """Exit broadcast floods the membership: all nodes receive the
        anonymous stream."""
        delivered = sum(
            1 for n in session.nodes.values() if len(n.store) > 0
        )
        assert delivered == len(session.nodes)

    def test_bandwidth_scales_with_membership(self):
        """Per-node bandwidth grows roughly linearly with N — the
        structural reason RAC cannot stream (Table II)."""
        small = RacSession.create(10)
        small.run(6)
        large = RacSession.create(20)
        large.run(6)
        bw_small = small.mean_bandwidth_kbps(2)
        bw_large = large.mean_bandwidth_kbps(2)
        ratio = bw_large / bw_small
        assert 1.5 < ratio < 3.0  # ~2x for 2x nodes

    def test_cover_traffic_flows_even_without_content(self):
        config = RacConfig(cells_per_round=2)
        s = RacSession.create(8, config)
        s.source.stream_updates_per_round = 0  # silence the source
        s.run(5)
        assert s.mean_bandwidth_kbps() > 0


class TestCapacityModel:
    def test_calibration_anchor(self):
        """The paper's measured point: 63 Kbps payload on 10 Gbps links
        with 1000 nodes."""
        got = rac_max_payload_kbps(10_000_000, 1000)
        assert got == pytest.approx(63.0, rel=0.01)

    def test_no_link_in_table2_supports_streaming(self):
        """RAC's Table II row is ∅ everywhere: even 10 Gbps cannot carry
        the minimum 300 Kbps stream."""
        from repro.streaming.video import LINK_CAPACITIES_KBPS

        for capacity in LINK_CAPACITIES_KBPS.values():
            assert rac_max_payload_kbps(capacity, 1000) < 80.0

    def test_cost_is_linear_in_payload_and_nodes(self):
        base = rac_per_node_kbps(10.0, 100)
        assert rac_per_node_kbps(20.0, 100) == pytest.approx(2 * base)
        assert rac_per_node_kbps(10.0, 200) == pytest.approx(2 * base)

    def test_validation(self):
        with pytest.raises(ValueError):
            rac_per_node_kbps(10.0, 1)

    def test_model_and_simulation_agree_on_shape(self):
        """The simulated per-node bandwidth should scale with N times
        the cell rate, like the model's structural term."""
        s10 = RacSession.create(10)
        s10.run(6)
        bw = s10.mean_bandwidth_kbps(2)
        cfg = s10.config
        # Structural floor: every node's cells broadcast to everyone:
        # N * cells_per_round * cell_size per round, shared across links.
        floor = (
            10 * cfg.cells_per_round * cfg.cell_bytes * 8 / 1000.0
        )
        assert bw > floor * 0.5
