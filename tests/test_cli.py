"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        # None means "use the command/scenario default" — including the
        # scenario's own execution-policy knob.
        assert args.nodes is None
        assert args.rate is None
        assert args.scenario is None
        assert args.policy is None
        assert args.workers is None

    def test_run_scenario_and_policy_flags(self):
        args = build_parser().parse_args(
            ["run", "--scenario", "fig9", "--policy", "sharded",
             "--shards", "8"]
        )
        assert args.scenario == "fig9"
        assert args.policy == "sharded"
        assert args.shards == 8
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "psychic"])

    def test_run_parallel_policy_flags(self):
        args = build_parser().parse_args(
            ["run", "--scenario", "fig9", "--policy", "parallel",
             "--workers", "4"]
        )
        assert args.policy == "parallel"
        assert args.workers == 4

    def test_workers_and_shards_reject_non_positive_counts(self):
        """Satellite regression: ``--workers 0`` and negatives used to
        parse fine and only fail (or be ignored) much later."""
        for flag, value in (
            ("--workers", "0"),
            ("--workers", "-2"),
            ("--shards", "0"),
            ("--shards", "-1"),
            ("--workers", "three"),
        ):
            with pytest.raises(SystemExit):
                build_parser().parse_args(
                    ["run", "--policy", "parallel", flag, value]
                )

    def test_workers_requires_parallel_policy(self):
        """The flag must never be silently ignored: without a policy (or
        with a non-parallel one) it is an explicit error."""
        with pytest.raises(SystemExit, match="--workers"):
            main(["run", "--nodes", "8", "--rounds", "2", "--workers", "2"])
        with pytest.raises(SystemExit, match="--workers"):
            main(
                ["run", "--nodes", "8", "--rounds", "2",
                 "--policy", "sharded", "--workers", "2"]
            )

    def test_workers_accepted_with_parallel_policy(self):
        args = build_parser().parse_args(
            ["run", "--policy", "parallel", "--workers", "1"]
        )
        assert args.workers == 1

    def test_detect_strategy_choices(self):
        args = build_parser().parse_args(
            ["detect", "--strategy", "silent-receiver"]
        )
        assert args.strategy == "silent-receiver"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "--strategy", "nonsense"])


class TestCommands:
    def test_run(self, capsys):
        assert main(["run", "--nodes", "12", "--rounds", "6"]) == 0
        out = capsys.readouterr().out
        assert "mean download" in out
        assert "verdicts           : 0" in out

    def test_run_named_scenario(self, capsys):
        code = main(
            ["run", "--scenario", "selfish", "--rounds", "10",
             "--policy", "sharded", "--shards", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario 'selfish'" in out
        assert "convicted" in out

    def test_run_unknown_scenario_fails_crisply(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            main(["run", "--scenario", "fig99"])

    def test_run_population_scenario(self, capsys, tmp_path):
        json_path = tmp_path / "pop.json"
        code = main(
            ["run", "--scenario", "fig9-1m", "--population", "300",
             "--rounds", "6", "--nodes", "16", "--json",
             str(json_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "population" in out
        assert "peak RSS" in out
        import json

        summary = json.loads(json_path.read_text())
        assert summary["population"] == 300
        assert summary["population_mean_down_kbps"] > 0
        assert summary["plane"]["plane_nodes"] == 284

    def test_run_population_requires_a_scenario(self):
        with pytest.raises(SystemExit, match="--population"):
            main(["run", "--nodes", "8", "--rounds", "2",
                  "--population", "100"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--population", "0"])

    def test_scenarios_listing(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("fig7", "fig9", "table2", "churn"):
            assert name in out
        assert main(["scenarios", "--verbose"]) == 0
        assert "paper:" in capsys.readouterr().out

    def test_detect(self, capsys):
        code = main(
            ["detect", "--strategy", "free-rider", "--nodes", "16",
             "--rounds", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "GUILTY" in out

    def test_fig8(self, capsys):
        assert main(["fig8"]) == 0
        assert "update size" in capsys.readouterr().out

    def test_fig9(self, capsys):
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "1000000" in out

    def test_fig10(self, capsys):
        assert main(["fig10"]) == 0
        assert "attackers" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "1080p" in out
        assert "33" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "∅" in out

    def test_verify(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "SAFE" in out
        assert "True" in out

    def test_fig7_small(self, capsys):
        assert main(["fig7", "--nodes", "20", "--rounds", "8"]) == 0
        assert "AcTinG" in capsys.readouterr().out


class TestDeprecatedAliases:
    """The legacy verbs are thin aliases over ``run --scenario``:
    byte-identical stdout, a deprecation pointer on stderr only."""

    @pytest.mark.parametrize(
        "alias, run_args",
        [
            (["fig8"], ["run", "--scenario", "fig8"]),
            (["fig9"], ["run", "--scenario", "fig9"]),
            (["fig10"], ["run", "--scenario", "fig10"]),
            (["table1"], ["run", "--scenario", "table1"]),
            (["table2"], ["run", "--scenario", "table2"]),
        ],
    )
    def test_alias_output_equals_run_scenario(
        self, capsys, alias, run_args
    ):
        alias_code = main(alias)
        alias_cap = capsys.readouterr()
        run_code = main(run_args)
        run_cap = capsys.readouterr()
        assert alias_code == run_code == 0
        assert alias_cap.out == run_cap.out
        assert "deprecated" in alias_cap.err
        assert run_cap.err == ""

    def test_fig7_alias_equals_run_scenario(self, capsys):
        flags = ["--nodes", "18", "--rounds", "6"]
        alias_code = main(["fig7"] + flags)
        alias_cap = capsys.readouterr()
        run_code = main(["run", "--scenario", "fig7"] + flags)
        run_cap = capsys.readouterr()
        assert alias_code == run_code == 0
        assert alias_cap.out == run_cap.out
        assert "deprecated" in alias_cap.err

    def test_detect_alias_equals_run_scenario(self, capsys):
        flags = ["--strategy", "free-rider", "--nodes", "16",
                 "--rounds", "10"]
        alias_code = main(["detect"] + flags)
        alias_cap = capsys.readouterr()
        run_code = main(["run", "--scenario", "detect"] + flags)
        run_cap = capsys.readouterr()
        assert alias_code == run_code == 0
        assert alias_cap.out == run_cap.out
        assert "GUILTY" in alias_cap.out
        assert "deprecated" in alias_cap.err

    def test_run_scenario_detect_conviction_exit_code(self, capsys):
        code = main(
            ["run", "--scenario", "detect", "--nodes", "16",
             "--rounds", "10"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "convicted: [8]" in out

    def test_strategy_requires_renderer_scenario(self):
        with pytest.raises(SystemExit, match="--strategy"):
            main(["run", "--nodes", "8", "--rounds", "2",
                  "--strategy", "free-rider"])
        with pytest.raises(SystemExit, match="--strategy"):
            main(["run", "--scenario", "selfish", "--rounds", "6",
                  "--strategy", "free-rider"])


class TestBenchCommand:
    def test_bench_writes_json(self, capsys, tmp_path):
        out_file = tmp_path / "BENCH_hotpath.json"
        code = main(
            ["bench", "--quick", "--nodes", "16", "--rounds", "3",
             "--out", str(out_file)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hashes/s 512-bit" in out
        assert "engine rounds/s" in out

        import json

        report = json.loads(out_file.read_text())
        assert report["schema"] == 7
        assert set(report["hashes_per_s"]) == {"256", "512"}
        assert report["primes_per_s"]["512"] > 0
        assert report["engine"]["rounds_per_s"] > 0
        assert report["backend"] in ("python", "gmpy2")
        cache = report["engine"]["cache"]
        assert 0.0 <= cache["memo_hit_rate"] <= 1.0
        assert cache["fixed_base_entries"] <= cache["fixed_base_max"]
        meter = report["meter_cdf"]
        assert meter["columnar_per_s"] > 0
        assert meter["dict_per_s"] > 0
        matrix = report["meter_matrix"]
        assert matrix["identical"] is True
        assert matrix["vectorized_per_s"] > 0
        assert matrix["columnar_per_s"] > 0
        parallel = report["parallel"]
        assert parallel["scenario"] == "fig9"
        assert parallel["cpu_count"] >= 1
        assert [row["workers"] for row in parallel["rows"]] == [2, 4]
        for row in parallel["rows"]:
            assert row["mode"] == "process"
            assert row["wall_rounds_per_s"] > 0
            assert row["projected_multicore_rounds_per_s"] > 0
            assert row["shard_imbalance"] >= 1.0
        batch = report["batch_verify"]
        assert [row["pairs"] for row in batch["primitive"]] == [3, 8]
        for row in batch["primitive"]:
            assert row["batched_folds_per_s"] > 0
            assert row["per_pair_folds_per_s"] > 0
        assert batch["engine"]["identical"] is True
        assert batch["engine"]["batched_lifts"] > 0
        assert batch["engine"]["monitors_per_node"] == 1
        ladder = report["shared_ladder"]
        assert ladder["scenario"] == "fig9"
        assert ladder["workers"] == 4
        assert ladder["with_table"]["worker_busy_cpu_seconds"] > 0
        assert ladder["without_table"]["worker_busy_cpu_seconds"] > 0
        population = report["population"]
        assert population["scenario"] == "fig9-1m"
        assert population["population"] == 100_000  # quick shrink
        assert population["nodes_per_sec"] > 0
        assert population["peak_rss_mb"] > 0
        assert "population tier" in out
        hooks = report["service_hooks"]
        assert hooks["untapped_rounds_per_s"] > 0
        assert hooks["idle_tap_rounds_per_s"] > 0
        assert hooks["subscribed_rounds_per_s"] > 0
        assert "service hooks" in out

    def test_bench_section_selector_retimes_only_selection(
        self, capsys, tmp_path
    ):
        import json

        out_file = tmp_path / "BENCH_hotpath.json"
        code = main(
            ["bench", "--quick", "--section", "primes_per_s",
             "--out", str(out_file)]
        )
        assert code == 0
        report = json.loads(out_file.read_text())
        assert report["schema"] == 7
        assert report["primes_per_s"]["512"] > 0
        # Non-selected sections were not measured at all.
        assert "engine" not in report
        assert "population" not in report
        capsys.readouterr()

        # A second selective run re-times its section and carries the
        # previous report's other sections over unchanged.
        previous_primes = report["primes_per_s"]
        code = main(
            ["bench", "--quick", "--section", "hashes_per_s",
             "--out", str(out_file)]
        )
        assert code == 0
        merged = json.loads(out_file.read_text())
        assert merged["hashes_per_s"]["512"] > 0
        assert merged["primes_per_s"] == previous_primes
        out = capsys.readouterr().out
        assert "hashes/s 512-bit" in out

    def test_bench_rejects_unknown_section(self, tmp_path):
        with pytest.raises(ValueError, match="unknown bench section"):
            main(
                ["bench", "--quick", "--section", "warp-core",
                 "--out", str(tmp_path / "b.json")]
            )


class TestFuzzCommand:
    def test_fuzz_clean_campaign_writes_report(self, capsys, tmp_path):
        out = tmp_path / "fuzz.json"
        code = main([
            "fuzz", "--iterations", "2", "--seed", "42",
            "--policies", "serial,sharded", "--json", str(out),
        ])
        assert code == 0
        assert "all invariants held" in capsys.readouterr().out
        import json

        report = json.loads(out.read_text())
        assert report["ok"] is True
        assert report["iterations"] == 2
        assert report["violations"] == []
        assert report["config"]["policies"] == ["serial", "sharded"]
        assert report["totals"]["faults"] >= 2

    def test_fuzz_replay_from_bare_spec(self, capsys, tmp_path):
        import json

        from repro.scenarios.fuzz import spec_to_json
        from repro.scenarios.spec import ScenarioSpec
        from repro.sim.faults import LossFault

        spec = ScenarioSpec(
            name="replay-me",
            nodes=10,
            rounds=7,
            warmup_rounds=2,
            fault_schedule=(
                # Confined to the exchange plane: unrestricted loss
                # also eats accountability traffic and (correctly)
                # produces convictions, which replay would report.
                LossFault(probability=0.05, kinds=("serve", "ack")),
            ),
            seed=9,
        )
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec_to_json(spec)))
        code = main([
            "fuzz", "--replay", str(path), "--policies", "serial,sharded",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "replaying replay-me" in out

    def test_fuzz_replay_report_without_violations(self, capsys, tmp_path):
        import json

        path = tmp_path / "report.json"
        path.write_text(json.dumps({"violations": []}))
        assert main(["fuzz", "--replay", str(path)]) == 0
        assert "no violations" in capsys.readouterr().out

    def test_fuzz_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown execution policy"):
            main(["fuzz", "--policies", "serial,warp"])


class TestDaemonSessionCommands:
    def test_daemon_parser_requires_listen(self):
        args = build_parser().parse_args(
            ["daemon", "--listen", "tcp://127.0.0.1:0"]
        )
        assert args.listen == "tcp://127.0.0.1:0"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["daemon"])

    def test_session_parser_defaults(self):
        args = build_parser().parse_args(
            ["session", "--scenario", "selfish"]
        )
        assert args.daemons is None
        assert args.local_daemons == 2
        assert args.transport == "mem"
        assert not args.no_batch_relays
        assert not args.verify_serial
        with pytest.raises(SystemExit):
            build_parser().parse_args(["session"])  # --scenario required
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["session", "--scenario", "x", "--transport", "pigeon"]
            )

    def test_session_local_fleet_with_serial_parity(self, capsys):
        code = main(
            ["session", "--scenario", "selfish", "--nodes", "14",
             "--rounds", "6", "--local-daemons", "2", "--verify-serial"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 shards" in out
        assert "serial parity: OK" in out
        assert "relay batches" in out

    def test_session_rejects_daemon_unsupported_scenarios(self):
        from repro.net.daemon import DaemonError

        with pytest.raises(DaemonError, match="churn"):
            main(["session", "--scenario", "churn"])

    def test_daemon_policy_flag_accepted_on_run(self, capsys):
        code = main(
            ["run", "--nodes", "12", "--rounds", "4",
             "--policy", "daemon"]
        )
        assert code == 0
        assert "mean download" in capsys.readouterr().out
