from setuptools import find_packages, setup

setup(
    name="pag-repro",
    version="1.0.0",
    description=(
        "Reproduction of 'PAG: Private and Accountable Gossip' "
        "(ICDCS 2016)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    # The simulator is dependency-free by design; everything below is
    # optional acceleration.
    install_requires=[],
    extras_require={
        # GMP-backed modular arithmetic: ~10x faster homomorphic
        # hashing at the paper's 512-bit sizes (auto-detected at
        # import; see PERFORMANCE.md).
        "fast": ["gmpy2>=2.1"],
        # numpy accelerates CDF aggregation over large memberships.
        "analysis": ["numpy>=1.24"],
        "dev": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": ["repro = repro.cli:main"],
    },
)
